"""The asyncio front-end of the admission service.

:class:`AdmissionService` owns the sockets and nothing else: it reads
JSON-line requests, guards them with the
:class:`~repro.service.backpressure.InflightLimiter`, awaits the synchronous
:class:`~repro.service.engine.AdmissionEngine` decision, and writes the
response line — one task per connection, many logical sessions multiplexed
per connection by request id.

Failure handling is deliberately boring:

* a malformed line gets an ``error`` response, not a dropped connection;
* a request past the in-flight cap gets an immediate ``backpressure``
  response;
* a vanished or stalled client (including the injected kinds from
  :class:`~repro.service.faults.ServiceFaultConfig`) has its sessions closed
  gracefully through the engine so the stream books stay balanced;
* shutdown drains — the listener closes first, in-flight requests finish,
  open sessions close with reason ``drained`` and ``drain_complete`` is
  emitted — so a trace from a SIGTERM'd server still validates.

All timing here flows through the service clock: decision timestamps use
``clock.now()`` (virtual minutes), latency measurements use
``clock.seconds()`` (monotonic wall seconds under :class:`WallClock`).
"""

from __future__ import annotations

import asyncio

from repro.exceptions import ProtocolError
from repro.obs.log import get_logger
from repro.service.backpressure import InflightLimiter
from repro.service.engine import AdmissionEngine
from repro.service.protocol import (
    ADMIN_KINDS,
    Response,
    decode_request,
    encode_response,
)

__all__ = ["AdmissionService"]

_log = get_logger("service.server")

#: Largest accepted request line, in bytes (a sane JSON request is ~100 B).
MAX_LINE_BYTES = 4096


class AdmissionService:
    """Asyncio TCP server wrapping one :class:`AdmissionEngine`."""

    def __init__(
        self,
        engine: AdmissionEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 1024,
        registry=None,
        tracer=None,
        drain_grace_seconds: float = 5.0,
    ) -> None:
        self._engine = engine
        self._host = host
        self._port = port
        self._clock = engine._clock
        self.limiter = InflightLimiter(
            max_in_flight, registry=registry, tracer=tracer
        )
        self._latency = None
        if registry is not None:
            self._latency = registry.histogram(
                "repro_service_request_latency_seconds",
                "wall seconds from request read to response write",
            )
        self._drain_grace = drain_grace_seconds
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._connection_count = 0
        self.requests_served = 0
        self.connections_dropped = 0
        self.connections_stalled = 0
        self.draining = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        if self._server is None:
            return self._port
        sockets = self._server.sockets or ()
        for sock in sockets:
            return int(sock.getsockname()[1])
        return self._port

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self._host,
            port=self._port,
            limit=MAX_LINE_BYTES,
        )
        _log.info("admission service listening on %s:%d", self._host, self.port)

    async def serve_forever(self) -> None:
        """Block until the server is closed."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self) -> int:
        """Graceful drain: stop accepting, finish in-flight, close sessions.

        Returns the number of sessions closed by the drain.
        """
        self.draining = True
        self._engine.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = self._clock.seconds() + self._drain_grace
        while self.limiter.in_flight > 0 and self._clock.seconds() < deadline:
            await asyncio.sleep(0.01)
        closed = self._engine.drain(in_flight=self.limiter.in_flight)
        for writer in list(self._connections):
            self._abort_writer(writer)
        _log.info("drain complete: %d sessions closed", closed)
        return closed

    # ------------------------------------------------------------------
    # The connection loop.
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connection_count += 1
        connection_index = self._connection_count
        faults = self._engine._faults
        session_ids: set[int] = set()
        requests_on_connection = 0
        self._connections.add(writer)
        try:
            while not self.draining:
                try:
                    line = await reader.readline()
                except (
                    ConnectionResetError,
                    BrokenPipeError,
                    asyncio.LimitOverrunError,
                    ValueError,
                ):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                requests_on_connection += 1
                await self._serve_line(text, writer, session_ids)
                if faults.any_connection_faults and self._fault_hits(
                    faults, connection_index, requests_on_connection, session_ids
                ):
                    break
        finally:
            self._connections.discard(writer)
            if session_ids:
                # The peer vanished with sessions open: close them through
                # the engine so held streams return to the pool.
                self._engine.close_connection_sessions(session_ids, "dropped")
            self._abort_writer(writer)

    def _fault_hits(
        self,
        faults,
        connection_index: int,
        requests_on_connection: int,
        session_ids: set[int],
    ) -> bool:
        """Apply any scheduled connection fault; True severs the connection."""
        if (
            faults.drops_connection(connection_index)
            and requests_on_connection >= faults.drop_after_requests
        ):
            self.connections_dropped += 1
            self._engine.close_connection_sessions(session_ids, "dropped")
            session_ids.clear()
            _log.warning("injected drop: severing connection %d", connection_index)
            return True
        if (
            faults.stalls_connection(connection_index)
            and requests_on_connection >= faults.stall_after_requests
        ):
            self.connections_stalled += 1
            self._engine.close_connection_sessions(session_ids, "stalled")
            session_ids.clear()
            _log.warning(
                "slow-client guard: closing stalled connection %d", connection_index
            )
            return True
        return False

    async def _serve_line(
        self, text: str, writer: asyncio.StreamWriter, session_ids: set[int]
    ) -> None:
        started = self._clock.seconds()
        if not self.limiter.try_enter("unparsed", self._engine.now):
            response = Response(
                request_id=0,
                kind="ping",
                session=-1,
                decision="backpressure",
                reason="in-flight limit reached; retry",
            )
            await self._write(writer, response)
            return
        # Anything the limiter (or the event loop) made the request wait for
        # between read and dispatch is queue time, charged to the request's
        # trace context rather than folded into engine time.
        queue_wait = self._clock.seconds() - started
        try:
            try:
                request = decode_request(text)
            except ProtocolError as exc:
                response = Response(
                    request_id=0,
                    kind="ping",
                    session=-1,
                    decision="error",
                    reason="protocol error",
                    error=str(exc),
                )
            else:
                context = None
                if request.kind not in ADMIN_KINDS:
                    # Admin verbs (metrics/health) bypass the decision
                    # pipeline entirely; minting would burn trace ids and
                    # shift every later request's id relative to a
                    # scrape-free run.
                    context = self._engine.mint_context(
                        received_seconds=started, queue_wait_seconds=queue_wait
                    )
                response = self._engine.handle(request, context=context)
                self.requests_served += 1
                if request.kind == "session_start" and response.decision in (
                    "admit",
                    "batch",
                ):
                    session_ids.add(request.session)
                elif request.kind == "session_end":
                    session_ids.discard(request.session)
            await self._write(writer, response)
        finally:
            self.limiter.exit()
            if self._latency is not None:
                self._latency.observe(self._clock.seconds() - started)

    async def _write(self, writer: asyncio.StreamWriter, response: Response) -> None:
        try:
            writer.write((encode_response(response) + "\n").encode("utf-8"))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    def _abort_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except OSError:  # pragma: no cover - platform-specific teardown
            pass
