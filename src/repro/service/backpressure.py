"""Bounded in-flight admission: the service's load shield.

An admission service that accepts every request it can read will, under
overload, queue unboundedly and answer *everyone* late — the worst possible
QoE outcome, since admission delay feeds directly into startup delay.  The
:class:`InflightLimiter` caps the number of requests between *received* and
*answered*; past the cap a request gets an immediate typed ``backpressure``
response (and a ``backpressure_reject`` trace event) instead of a slot in a
silently growing queue.  Clients see a fast, honest refusal they can retry
against, and latency for admitted requests stays bounded.

The limiter also owns the ``repro_service_inflight_requests`` gauge so the
exposition always reflects the same counter the cap enforces.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["InflightLimiter"]


class InflightLimiter:
    """Counted in-flight guard with typed rejects and trace/metric hooks."""

    def __init__(self, limit: int, registry=None, tracer=None) -> None:
        if limit < 1:
            raise ConfigurationError(f"in-flight limit must be >= 1, got {limit}")
        self.limit = limit
        self.in_flight = 0
        self.peak_in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._gauge = None
        if registry is not None:
            self._gauge = registry.gauge(
                "repro_service_inflight_requests",
                "requests currently between receipt and response",
            )

    def try_enter(self, kind: str, now: float) -> bool:
        """Claim an in-flight slot; False (and a trace event) when full."""
        if self.in_flight >= self.limit:
            self.rejected += 1
            if self._tracer is not None:
                self._tracer.emit(
                    "backpressure_reject",
                    now,
                    kind=kind,
                    in_flight=self.in_flight,
                    limit=self.limit,
                )
            return False
        self.in_flight += 1
        self.admitted += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        if self._gauge is not None:
            self._gauge.set(self.in_flight)
        return True

    def exit(self) -> None:
        """Release an in-flight slot (the response was written)."""
        if self.in_flight < 1:
            raise ConfigurationError("in-flight counter underflow: exit without enter")
        self.in_flight -= 1
        if self._gauge is not None:
            self._gauge.set(self.in_flight)
