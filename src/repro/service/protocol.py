"""The JSON-line wire protocol of the admission service.

One request per line, one response per line, UTF-8 JSON objects::

    -> {"id": 7, "kind": "session_start", "session": 12, "movie": 0}
    <- {"id": 7, "kind": "session_start", "session": 12, "decision": "batch",
        "wait_minutes": 1.2, "reason": "planned movie: covered by plan"}

``id`` is a client-chosen correlation number echoed verbatim, so many
logical sessions can multiplex one TCP connection and the client can match
responses out of order.  ``session`` is the client's session identifier;
``kind`` is one of :data:`REQUEST_KINDS`:

================  ===========================================================
kind              payload
================  ===========================================================
``session_start`` ``movie`` (int) — ask to start a session for a title
``pause``         ``duration`` (minutes) — phase-1 VCR operation
``rewind``        ``duration`` (minutes)
``fastforward``   ``duration`` (minutes)
``resume``        resume after the last VCR operation (phase-2 hit/miss)
``session_end``   the viewer finished; release the session's resources
``ping``          liveness probe (answered ``pong``; no session required)
``metrics``       admin scrape: ``format`` ("prometheus" default, "json")
``health``        admin probe: engine/SLO snapshot as a JSON ``body``
================  ===========================================================

Responses always carry ``decision`` — ``admit``, ``batch`` (with
``wait_minutes``), ``reject``, ``deny``, ``hit``, ``miss``, ``closed``,
``pong``, ``ok`` (admin verbs, with a ``body`` payload), ``backpressure``
or ``error`` (with ``error`` text) — plus a human-readable ``reason``.
Decoding is strict: unknown kinds, missing fields and non-object lines
raise :class:`~repro.exceptions.ProtocolError`, which the server maps to an
``error`` response instead of dropping the connection.

The admin verbs (``metrics``/``health``) are sessionless like ``ping`` and
answered in-process from the engine's live registry — the scrape endpoint
rides the existing socket, so there is no second listener to deploy or
secure.  Their responses carry a ``body`` string (Prometheus text or JSON)
that can far exceed a request line; scraping clients must read with a
raised buffer limit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ProtocolError

__all__ = [
    "REQUEST_KINDS",
    "VCR_KINDS",
    "ADMIN_KINDS",
    "DECISIONS",
    "SCRAPE_FORMATS",
    "SESSION_PHASES",
    "INITIAL_PHASE",
    "PHASE_TRANSITIONS",
    "Request",
    "Response",
    "decode_request",
    "encode_request",
    "decode_response",
    "encode_response",
]

#: Every request kind the service understands.
REQUEST_KINDS: tuple[str, ...] = (
    "session_start",
    "pause",
    "rewind",
    "fastforward",
    "resume",
    "session_end",
    "ping",
    "metrics",
    "health",
)

#: The phase-1 VCR operations (carry a ``duration``).
VCR_KINDS: frozenset[str] = frozenset({"pause", "rewind", "fastforward"})

#: The live-telemetry admin verbs (answered ``ok`` with a ``body``).
ADMIN_KINDS: frozenset[str] = frozenset({"metrics", "health"})

#: Exposition formats the ``metrics`` verb accepts.
SCRAPE_FORMATS: tuple[str, ...] = ("prometheus", "json")

#: Every decision a response may carry.
DECISIONS: frozenset[str] = frozenset(
    {
        "admit",
        "batch",
        "reject",
        "deny",
        "hit",
        "miss",
        "closed",
        "pong",
        "ok",
        "backpressure",
        "error",
    }
)

#: Kinds that do not reference a session.
_SESSIONLESS = frozenset({"ping"}) | ADMIN_KINDS

# ----------------------------------------------------------------------
# The declared session state machine.
#
# The engine (:mod:`repro.service.engine`) and the registry entry
# (:class:`repro.service.state.LiveSession`) encode the session lifecycle
# operationally — guards plus ``session.phase = SessionPhase.X``
# assignments.  This table is the *declared* form of the same machine, in
# the phase enum's string values, and the ``protocol-state`` lint rule
# diffs the two in both directions (exactly like the trace/metric schema
# cross-checks): a phase assignment the table does not permit fails the
# gate, and a declared transition no engine site ever performs rots loudly
# instead of silently.  ``SessionStateError`` paths therefore cannot drift
# from what this module promises on the wire.
# ----------------------------------------------------------------------

#: Every session phase, by enum value (see ``SessionPhase`` in state.py).
SESSION_PHASES: tuple[str, ...] = ("playing", "in_vcr", "miss_hold")

#: The phase a freshly opened session starts in.
INITIAL_PHASE: str = "playing"

#: Permitted (from_phase, to_phase) lifecycle transitions:
#:
#: * ``playing -> in_vcr`` — a phase-1 VCR operation is admitted;
#: * ``miss_hold -> in_vcr`` — a pinned viewer starts another operation;
#: * ``in_vcr -> playing`` — resume hit (or degraded back into the batch);
#: * ``in_vcr -> miss_hold`` — resume miss: the stream stays pinned;
#: * ``miss_hold -> playing`` — the hold expires at the next restart, or
#:   the degradation ladder sheds the pinned stream.
PHASE_TRANSITIONS: frozenset[tuple[str, str]] = frozenset(
    {
        ("playing", "in_vcr"),
        ("miss_hold", "in_vcr"),
        ("in_vcr", "playing"),
        ("in_vcr", "miss_hold"),
        ("miss_hold", "playing"),
    }
)


@dataclass(frozen=True)
class Request:
    """One decoded client request."""

    request_id: int
    kind: str
    session: int = -1
    movie: int = -1
    duration: float = 0.0
    format: str = ""

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ProtocolError(
                f"unknown request kind {self.kind!r} (expected one of {REQUEST_KINDS})"
            )
        if self.kind not in _SESSIONLESS and self.session < 0:
            raise ProtocolError(f"{self.kind}: 'session' must be a non-negative int")
        if self.kind == "session_start" and self.movie < 0:
            raise ProtocolError("session_start: 'movie' must be a non-negative int")
        if self.kind in VCR_KINDS and self.duration <= 0.0:
            raise ProtocolError(f"{self.kind}: 'duration' must be positive minutes")
        if self.format and self.kind != "metrics":
            raise ProtocolError(f"{self.kind}: 'format' only applies to metrics")
        if self.kind == "metrics" and self.format and self.format not in SCRAPE_FORMATS:
            raise ProtocolError(
                f"metrics: unknown format {self.format!r} "
                f"(expected one of {SCRAPE_FORMATS})"
            )


@dataclass(frozen=True)
class Response:
    """One decision sent back to the client."""

    request_id: int
    kind: str
    session: int
    decision: str
    reason: str = ""
    wait_minutes: float | None = None
    error: str | None = None
    body: str | None = None

    def __post_init__(self) -> None:
        if self.decision not in DECISIONS:
            raise ProtocolError(f"unknown decision {self.decision!r}")


def _require_int(obj: Mapping, field: str, default: int) -> int:
    value = obj.get(field, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"field {field!r} must be an integer, got {value!r}")
    return value


def decode_request(line: str) -> Request:
    """Decode one wire line into a :class:`Request` (strict)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc.msg}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    kind = obj.get("kind")
    if not isinstance(kind, str):
        raise ProtocolError("missing or non-string 'kind'")
    unknown = set(obj) - {"id", "kind", "session", "movie", "duration", "format"}
    if unknown:
        raise ProtocolError(f"unknown request field(s) {sorted(unknown)}")
    duration = obj.get("duration", 0.0)
    if not isinstance(duration, (int, float)) or isinstance(duration, bool):
        raise ProtocolError(f"field 'duration' must be a number, got {duration!r}")
    format_ = obj.get("format", "")
    if not isinstance(format_, str):
        raise ProtocolError(f"field 'format' must be a string, got {format_!r}")
    return Request(
        request_id=_require_int(obj, "id", default=0),
        kind=kind,
        session=_require_int(obj, "session", default=-1),
        movie=_require_int(obj, "movie", default=-1),
        duration=float(duration),
        format=format_,
    )


def encode_request(request: Request) -> str:
    """Encode a request as one wire line (no trailing newline)."""
    obj: dict[str, object] = {"id": request.request_id, "kind": request.kind}
    if request.session >= 0:
        obj["session"] = request.session
    if request.movie >= 0:
        obj["movie"] = request.movie
    if request.duration > 0.0:
        obj["duration"] = request.duration
    if request.format:
        obj["format"] = request.format
    return json.dumps(obj, sort_keys=True)


def encode_response(response: Response) -> str:
    """Encode a response as one wire line (no trailing newline)."""
    obj: dict[str, object] = {
        "id": response.request_id,
        "kind": response.kind,
        "session": response.session,
        "decision": response.decision,
        "reason": response.reason,
    }
    if response.wait_minutes is not None:
        obj["wait_minutes"] = response.wait_minutes
    if response.error is not None:
        obj["error"] = response.error
    if response.body is not None:
        obj["body"] = response.body
    return json.dumps(obj, sort_keys=True)


def decode_response(line: str) -> Response:
    """Decode one wire line into a :class:`Response` (strict)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc.msg}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"expected a JSON object, got {type(obj).__name__}")
    decision = obj.get("decision")
    if not isinstance(decision, str) or decision not in DECISIONS:
        raise ProtocolError(f"missing or unknown 'decision' {decision!r}")
    wait = obj.get("wait_minutes")
    if wait is not None and (not isinstance(wait, (int, float)) or isinstance(wait, bool)):
        raise ProtocolError(f"'wait_minutes' must be a number, got {wait!r}")
    error = obj.get("error")
    if error is not None and not isinstance(error, str):
        raise ProtocolError(f"'error' must be a string, got {error!r}")
    body = obj.get("body")
    if body is not None and not isinstance(body, str):
        raise ProtocolError(f"'body' must be a string, got {body!r}")
    return Response(
        request_id=_require_int(obj, "id", default=0),
        kind=str(obj.get("kind", "")),
        session=_require_int(obj, "session", default=-1),
        decision=decision,
        reason=str(obj.get("reason", "")),
        wait_minutes=None if wait is None else float(wait),
        error=error,
        body=body,
    )
