"""Deterministic parallel execution for sweeps, grids and replications.

* :class:`~repro.parallel.executor.ParallelExecutor` — fork-based process
  pool with a serial fallback, round-robin sharding, index-keyed results
  (bit-for-bit identical output for any worker count) and per-shard
  timing/cache telemetry.
* :mod:`~repro.parallel.sweeps` — per-movie feasible-set sweep tasks for the
  Section-5 grids (Figures 8/9, the sizing planner).
* The Monte-Carlo replication harness lives with the simulators in
  :mod:`repro.sim.replication` and runs on this executor.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    ParallelOutcome,
    ShardReport,
    fork_available,
    resolve_workers,
    reset_worker_cache,
    worker_cache,
)
from repro.parallel.sweeps import (
    FrontierTask,
    MovieFrontier,
    evaluate_frontier,
    sweep_frontiers,
    warm_feasible_set,
)

__all__ = [
    "ParallelExecutor",
    "ParallelOutcome",
    "ShardReport",
    "fork_available",
    "resolve_workers",
    "worker_cache",
    "FrontierTask",
    "MovieFrontier",
    "evaluate_frontier",
    "sweep_frontiers",
    "warm_feasible_set",
]
