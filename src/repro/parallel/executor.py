"""Deterministic process-pool fan-out for sweeps, grids and replications.

The sizing procedure (Section 5), the Figure-8/9 experiment grids and the
Monte-Carlo validation replications are all embarrassingly parallel: many
independent, CPU-bound evaluations whose outputs are combined by *task
index*, never by completion order.  :class:`ParallelExecutor` exploits that
shape while keeping the repository's reproducibility contract intact:

Determinism contract
--------------------
* Tasks are assigned to shards round-robin by task index, one shard per
  worker, so the partition is a pure function of ``(len(items), workers)``.
* Each task's result is keyed by its task index; the driver re-sorts by
  index before returning.  The same inputs therefore produce bit-for-bit
  identical results regardless of worker count, scheduling order, or
  whether the serial fallback ran.
* Tasks must be pure functions of their item (memoisation through the
  worker-local :class:`~repro.runtime.modelcache.ModelEvaluationCache` is
  invisible: a cache hit returns exactly the value a fresh evaluation
  would).

Execution model
---------------
Fan-out uses a ``fork``-context process pool: workers inherit the parent's
imported modules, and each shard runs its tasks serially in-order inside one
worker, against a per-process :func:`worker_cache` — so memoisation still
pays off within a shard.  When ``workers == 1``, the item list is trivial,
or the platform lacks ``fork`` (e.g. Windows), the same shard runner
executes inline in the driver process — identical code path, identical
output.

Every run reports per-shard wall-clock timing and cache hit/miss deltas
back to the driver via :class:`ShardReport`, so operators can verify both
the speedup and that worker-side memoisation is actually working.

Dead workers do not kill the run: a worker that dies mid-shard (OOM kill,
segfault, ``os._exit``) surfaces as a broken pool, and the driver re-submits
only the shards that never delivered, in a fresh pool, up to
``max_shard_retries`` times.  Because tasks are pure and keyed by index, a
re-run shard produces exactly the results the dead worker would have — the
determinism contract survives the crash.  Exhausting the retries raises
:class:`~repro.exceptions.WorkerCrashError`; ordinary task exceptions still
propagate unchanged on first occurrence (they would recur verbatim anyway).

Task callables must be module-level (picklable by qualified name) and items
must be picklable.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, WorkerCrashError
from repro.obs.log import get_logger
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - import layering: see worker_cache()
    from repro.runtime.modelcache import ModelEvaluationCache

__all__ = [
    "ShardReport",
    "ParallelOutcome",
    "ParallelExecutor",
    "fork_available",
    "resolve_workers",
    "worker_cache",
    "reset_worker_cache",
]

T = TypeVar("T")
R = TypeVar("R")

_log = get_logger("parallel.executor")

#: Process-local evaluation cache shared by every shard this process runs.
_WORKER_CACHE: "ModelEvaluationCache | None" = None


def worker_cache() -> "ModelEvaluationCache":
    """This process's :class:`ModelEvaluationCache`, created on first use.

    In a pool worker the cache lives for the worker's lifetime, so repeated
    evaluations within (and across) shards hit memory instead of quadrature;
    in the serial fallback it is simply the driver process's own cache.
    """
    # Imported here (not at module top) so the substrate layers
    # (repro.sim.replication) can import the executor without pulling in
    # repro.runtime/repro.sizing.
    from repro.runtime.modelcache import ModelEvaluationCache

    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = ModelEvaluationCache()
    return _WORKER_CACHE


def reset_worker_cache() -> None:
    """Drop this process's worker cache (benchmark/test isolation).

    Forked pool workers inherit the driver's cache contents at fork time —
    deterministically harmless (cached values equal fresh evaluations by
    contract) but unwanted when timing cold-start behaviour.
    """
    global _WORKER_CACHE
    _WORKER_CACHE = None


def fork_available() -> bool:
    """True when the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count knob: ``None``/``0`` means all CPUs."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    return int(workers)


@dataclass(frozen=True)
class ShardReport:
    """Timing and cache telemetry for one shard's in-order task run."""

    shard: int
    tasks: int
    seconds: float
    cache_hits: int
    cache_misses: int
    pid: int
    attempts: int = 1

    def describe(self) -> str:
        """One-line human-readable form."""
        retried = f", attempt {self.attempts}" if self.attempts > 1 else ""
        return (
            f"shard {self.shard}: {self.tasks} tasks in {self.seconds:.2f}s "
            f"(cache {self.cache_hits} hits / {self.cache_misses} misses, "
            f"pid {self.pid}{retried})"
        )


@dataclass(frozen=True)
class ParallelOutcome:
    """A fan-out's results (in task order) plus its execution telemetry."""

    results: tuple
    shards: tuple[ShardReport, ...]
    workers: int
    seconds: float
    retried_shards: int = 0

    @property
    def tasks(self) -> int:
        """Total task count across all shards."""
        return len(self.results)

    @property
    def cache_hits(self) -> int:
        """Cache hits summed over shards."""
        return sum(s.cache_hits for s in self.shards)

    @property
    def cache_misses(self) -> int:
        """Cache misses summed over shards."""
        return sum(s.cache_misses for s in self.shards)

    def describe(self) -> str:
        """One-line driver summary (timing is wall clock, not CPU)."""
        return (
            f"{self.tasks} tasks over {self.workers} worker(s) in "
            f"{self.seconds:.2f}s; "
            + "; ".join(s.describe() for s in self.shards)
        )

    @staticmethod
    def merge(*outcomes: "ParallelOutcome") -> "ParallelOutcome":
        """Combine phase outcomes of a multi-phase grid into one report.

        Results are concatenated in phase order, shard reports are kept
        as-is (shard indices are per-phase), wall-clock seconds add up, and
        the worker count is the maximum any phase used.
        """
        if not outcomes:
            raise ConfigurationError("merge needs at least one outcome")
        return ParallelOutcome(
            results=tuple(r for o in outcomes for r in o.results),
            shards=tuple(s for o in outcomes for s in o.shards),
            workers=max(o.workers for o in outcomes),
            seconds=sum(o.seconds for o in outcomes),
            retried_shards=sum(o.retried_shards for o in outcomes),
        )

    def timing_payload(self) -> dict:
        """JSON-serialisable telemetry (benchmark artifacts, logs)."""
        return {
            "workers": self.workers,
            "tasks": self.tasks,
            "seconds": self.seconds,
            "retried_shards": self.retried_shards,
            "shards": [
                {
                    "shard": s.shard,
                    "tasks": s.tasks,
                    "seconds": s.seconds,
                    "cache_hits": s.cache_hits,
                    "cache_misses": s.cache_misses,
                    "pid": s.pid,
                    "attempts": s.attempts,
                }
                for s in self.shards
            ],
        }


@dataclass(frozen=True)
class _ShardResult:
    """What one shard ships back to the driver."""

    shard: int
    keyed_results: tuple  # ((task_index, result), ...)
    seconds: float
    cache_hits: int
    cache_misses: int
    pid: int


def _cache_counters(cache: ModelEvaluationCache) -> tuple[int, int]:
    stats = cache.stats()
    return (
        sum(s.hits for s in stats.values()),
        sum(s.misses for s in stats.values()),
    )


def _run_shard(
    func: Callable[[T], R], shard_index: int, tasks: Sequence[tuple[int, T]]
) -> _ShardResult:
    """Run one shard's tasks serially in-order (in a worker or inline)."""
    cache = worker_cache()
    hits_before, misses_before = _cache_counters(cache)
    with span("parallel.shard") as timer:
        keyed = tuple((index, func(item)) for index, item in tasks)
    seconds = timer.elapsed
    hits_after, misses_after = _cache_counters(cache)
    return _ShardResult(
        shard=shard_index,
        keyed_results=keyed,
        seconds=seconds,
        cache_hits=hits_after - hits_before,
        cache_misses=misses_after - misses_before,
        pid=os.getpid(),
    )


class ParallelExecutor:
    """Fans a pure task function over items with deterministic output order."""

    def __init__(
        self,
        workers: int | None = 1,
        max_shard_retries: int = 2,
        tracer=None,
    ) -> None:
        if max_shard_retries < 0:
            raise ConfigurationError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        self._workers = resolve_workers(workers)
        self._max_shard_retries = max_shard_retries
        # Diagnostic only: ``worker_retry`` events depend on *when* a worker
        # died, so they never belong in a deterministic run trace — attach a
        # tracer here only for post-mortems.
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self.shard_retries = 0

    @property
    def workers(self) -> int:
        """The resolved worker count."""
        return self._workers

    def map(self, func: Callable[[T], R], items: Iterable[T]) -> ParallelOutcome:
        """Apply ``func`` to every item; results come back in item order.

        ``func`` must be a module-level callable (or otherwise picklable by
        reference) and pure in its item.  Exceptions raised by any task
        propagate to the caller unchanged.
        """
        indexed = list(enumerate(items))
        shard_count = max(1, min(self._workers, len(indexed)))
        _log.debug("fan-out: %d tasks over %d shard(s)", len(indexed), shard_count)
        shards: list[list[tuple[int, T]]] = [[] for _ in range(shard_count)]
        for index, item in indexed:
            shards[index % shard_count].append((index, item))

        attempts: dict[int, int] = {}
        with span("parallel.map") as timer:
            if shard_count == 1 or not fork_available():
                shard_results = [
                    _run_shard(func, shard_index, shard)
                    for shard_index, shard in enumerate(shards)
                ]
            else:
                shard_results = self._map_with_retries(
                    func, list(enumerate(shards)), attempts
                )
        seconds = timer.elapsed

        keyed: list[tuple[int, R]] = []
        for shard_result in shard_results:
            keyed.extend(shard_result.keyed_results)
        keyed.sort(key=lambda pair: pair[0])
        shard_results.sort(key=lambda s: s.shard)
        return ParallelOutcome(
            results=tuple(result for _, result in keyed),
            shards=tuple(
                ShardReport(
                    shard=s.shard,
                    tasks=len(s.keyed_results),
                    seconds=s.seconds,
                    cache_hits=s.cache_hits,
                    cache_misses=s.cache_misses,
                    pid=s.pid,
                    attempts=attempts.get(s.shard, 1),
                )
                for s in shard_results
            ),
            workers=shard_count,
            seconds=seconds,
            retried_shards=sum(1 for n in attempts.values() if n > 1),
        )

    def _map_with_retries(
        self,
        func: Callable[[T], R],
        pending: list[tuple[int, Sequence[tuple[int, T]]]],
        attempts: dict[int, int],
    ) -> list[_ShardResult]:
        """Fan the shards out, re-submitting the ones a dead worker ate.

        A crashed worker breaks its whole pool, so every shard still in
        flight fails together; the completed ones keep their results and the
        rest go into a fresh pool.  Task purity makes the re-run exact, and
        the driver keys results by task index, so the output is byte-for-byte
        the output of a crash-free run.
        """
        context = multiprocessing.get_context("fork")
        shard_results: list[_ShardResult] = []
        for shard_index, _ in pending:
            attempts[shard_index] = 1
        while True:
            failed: list[tuple[int, Sequence[tuple[int, T]]]] = []
            with ProcessPoolExecutor(
                max_workers=len(pending), mp_context=context
            ) as pool:
                futures = [
                    (shard_index, shard, pool.submit(_run_shard, func, shard_index, shard))
                    for shard_index, shard in pending
                ]
                for shard_index, shard, future in futures:
                    try:
                        shard_results.append(future.result())
                    except BrokenProcessPool:
                        failed.append((shard_index, shard))
            if not failed:
                return shard_results
            exhausted = [
                shard_index
                for shard_index, _ in failed
                if attempts[shard_index] > self._max_shard_retries
            ]
            if exhausted:
                raise WorkerCrashError(
                    f"shard(s) {exhausted} kept crashing their worker; gave up "
                    f"after {self._max_shard_retries} retries each"
                )
            for shard_index, _ in failed:
                attempt = attempts[shard_index]
                attempts[shard_index] = attempt + 1
                self.shard_retries += 1
                _log.warning(
                    "worker died; re-submitting shard %d (attempt %d)",
                    shard_index,
                    attempt + 1,
                )
                if self._tracer is not None:
                    self._tracer.emit(
                        "worker_retry", 0.0, shard=shard_index, attempt=attempt + 1
                    )
            pending = failed
