"""Parallel feasible-set sweeps: per-movie frontier evaluation as tasks.

One task = one movie's slice of a Section-5 sizing grid: find its largest
verified-feasible stream count and/or evaluate a requested set of points on
the ``B = l − n·w`` line.  A worker routes every evaluation through its
process-local :func:`~repro.parallel.executor.worker_cache`, then ships back
a :class:`MovieFrontier` — plain data (name, ``n_max``, evaluated points) —
which the driver can replay into a warm
:class:`~repro.sizing.feasible.FeasibleSet` without ever rebuilding the hit
model.

Two-phase grids (Figure 9: first per-movie maxima, then the cost curve's
specific allocations) pass the first phase's points back in via
``warm_points``, so the second phase pays only for the new evaluations even
though pool workers do not persist between phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.parallel.executor import ParallelExecutor, ParallelOutcome, worker_cache
from repro.sizing.feasible import FeasiblePoint, FeasibleSet, MovieSizingSpec

__all__ = [
    "FrontierTask",
    "MovieFrontier",
    "evaluate_frontier",
    "sweep_frontiers",
    "warm_feasible_set",
]


@dataclass(frozen=True)
class FrontierTask:
    """One movie's work order for a sweep."""

    spec: MovieSizingSpec
    include_end_hit: bool = True
    #: Extra stream counts to evaluate beyond what ``find_max`` touches.
    stream_counts: tuple[int, ...] = ()
    #: Run :meth:`FeasibleSet.max_streams` (bisection + verification walk).
    find_max: bool = True
    #: Already-evaluated points to warm-start from (phase-2 grids).
    warm_points: tuple[FeasiblePoint, ...] = ()


@dataclass(frozen=True)
class MovieFrontier:
    """A movie's evaluated frontier slice, as shipped back by a worker."""

    name: str
    n_max: int | None
    points: tuple[FeasiblePoint, ...]
    _by_n: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._by_n.update({p.num_streams: p for p in self.points})

    def point(self, num_streams: int) -> FeasiblePoint:
        """The evaluated point at ``n`` (KeyError when not swept)."""
        return self._by_n[num_streams]

    def __contains__(self, num_streams: int) -> bool:
        return num_streams in self._by_n


def evaluate_frontier(task: FrontierTask) -> MovieFrontier:
    """Worker task: evaluate one movie's frontier slice.

    Module-level so the executor can pickle it by reference; all evaluation
    goes through the worker-local shared cache, so a movie re-swept in the
    same worker reuses its constructed model and every prior point.
    """
    cache = worker_cache()
    feasible = cache.feasible_set(
        task.spec, include_end_hit=task.include_end_hit, points=task.warm_points
    )
    n_max = feasible.max_streams() if task.find_max else None
    if task.stream_counts:
        # One batched evaluation for the whole requested slice.
        feasible.points_batch(task.stream_counts)
    return MovieFrontier(
        name=task.spec.name, n_max=n_max, points=feasible.known_points()
    )


def sweep_frontiers(
    tasks: Sequence[FrontierTask],
    workers: int | None = 1,
    executor: ParallelExecutor | None = None,
) -> tuple[list[MovieFrontier], ParallelOutcome]:
    """Fan the tasks out and return frontiers in task order plus telemetry."""
    executor = executor or ParallelExecutor(workers)
    outcome = executor.map(evaluate_frontier, list(tasks))
    return list(outcome.results), outcome


def warm_feasible_set(
    spec: MovieSizingSpec,
    frontier: MovieFrontier,
    include_end_hit: bool = True,
) -> FeasibleSet:
    """A driver-side :class:`FeasibleSet` warm-started from a sweep result.

    Queries that touch only swept points (including a :meth:`max_streams`
    replay — the worker ran the identical bisection) are pure cache lookups;
    anything else lazily builds the model and computes exactly what a cold
    set would, so correctness never depends on sweep coverage.
    """
    return FeasibleSet(spec, include_end_hit=include_end_hit, points=frontier.points)
