"""The lint engine: collect modules, run rules, apply suppressions.

``run_lint(root)`` walks every ``*.py`` under ``root``, parses it once,
extracts ``# lint: allow(rule-id[, rule-id])`` pragmas, runs every rule's
per-module ``check`` and whole-tree ``finalize``, and filters the findings
through the inline pragmas and (optionally) a committed baseline.  The
result is a :class:`LintReport` the CLI renders as text or JSON.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.analysis.base import (
    Finding,
    LintContext,
    ModuleInfo,
    Rule,
    create_rules,
)
from repro.analysis.baseline import Baseline
from repro.exceptions import ConfigurationError

__all__ = ["collect_modules", "run_lint", "LintReport"]

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")

#: Directory names never scanned (caches, VCS internals).
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis"})


def _module_name(root: Path, path: Path) -> str:
    """Dotted module name for ``path`` relative to the scanned root.

    The root may be the package directory itself (``src/repro``), its parent
    (``src``), or any tree containing package directories; the name is
    rooted at the nearest ancestor that looks like the scan root.
    """
    rel = path.relative_to(root)
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if root.name and (root / "__init__.py").exists():
        parts.insert(0, root.name)
    return ".".join(parts)


def _parse_allow_pragmas(source: str) -> dict[int, set[str]]:
    """Line -> allowed rule ids, from ``# lint: allow(...)`` comments."""
    allow: dict[int, set[str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if rules:
            allow[line_number] = rules
    return allow


def collect_modules(root: str | Path) -> LintContext:
    """Parse every ``*.py`` under ``root`` into a :class:`LintContext`."""
    root = Path(root).resolve()
    if not root.exists():
        raise ConfigurationError(f"lint root {root} does not exist")
    paths = sorted(
        path
        for path in root.rglob("*.py")
        if not any(part in _SKIP_DIRS for part in path.parts)
    )
    modules: List[ModuleInfo] = []
    for path in paths:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ConfigurationError(
                f"cannot lint {path}: syntax error at line {exc.lineno}: {exc.msg}"
            ) from exc
        modules.append(
            ModuleInfo(
                path=path,
                relpath=path.relative_to(root).as_posix(),
                module=_module_name(root, path),
                source=source,
                tree=tree,
                allow=_parse_allow_pragmas(source),
            )
        )
    return LintContext(root=root, modules=modules)


@dataclass
class LintReport:
    """Outcome of one lint run: new findings plus suppression accounting."""

    findings: List[Finding]
    suppressed_pragma: List[Finding] = field(default_factory=list)
    suppressed_baseline: List[Finding] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)
    modules_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no un-suppressed finding remains."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 2 findings."""
        return 0 if self.clean else 2

    def render_text(self) -> str:
        """Human-readable report (one diagnostic per line + summary)."""
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.modules_scanned} module(s) "
            f"({len(self.suppressed_pragma)} allowed inline, "
            f"{len(self.suppressed_baseline)} baselined)"
        )
        for entry in self.stale_baseline:
            lines.append(
                f"note: stale baseline entry {entry.get('fingerprint')} "
                f"({entry.get('rule')} in {entry.get('path')}) — "
                f"fixed; regenerate the baseline to ratchet"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON payload for ``--format json`` and the CI artifact."""
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed_pragma": [
                finding.to_dict() for finding in self.suppressed_pragma
            ],
            "suppressed_baseline": [
                finding.to_dict() for finding in self.suppressed_baseline
            ],
            "stale_baseline": self.stale_baseline,
            "modules_scanned": self.modules_scanned,
            "rules_run": list(self.rules_run),
            "clean": self.clean,
        }


def run_lint(
    root: str | Path,
    rules: Sequence[Rule] | None = None,
    rule_ids: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Run the static-analysis pass over ``root``.

    ``rules`` takes pre-built rule instances (fixture tests inject custom
    expected sets this way); otherwise ``rule_ids`` selects from the
    registry, defaulting to every registered rule.
    """
    context = collect_modules(root)
    active = list(rules) if rules is not None else create_rules(rule_ids)

    raw: List[Finding] = []
    for rule in active:
        for module in context.modules:
            raw.extend(rule.check(module, context))
    for rule in active:
        raw.extend(rule.finalize(context))

    by_path = {module.relpath: module for module in context.modules}
    visible: List[Finding] = []
    pragma_suppressed: List[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.allows(finding.rule, finding.line):
            pragma_suppressed.append(finding)
        else:
            visible.append(finding)
    visible.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    baseline_suppressed: List[Finding] = []
    stale: List[dict] = []
    if baseline is not None:
        visible, baseline_suppressed = baseline.split(visible)
        stale = baseline.stale_entries(visible + baseline_suppressed)

    return LintReport(
        findings=visible,
        suppressed_pragma=pragma_suppressed,
        suppressed_baseline=baseline_suppressed,
        stale_baseline=stale,
        modules_scanned=len(context.modules),
        rules_run=[rule.rule_id for rule in active],
    )
