"""Trace-event and metric-name cross-checks against the declared schemas.

The JSONL trace schema (:data:`repro.obs.trace.EVENT_SCHEMA`) and the metric
catalog (:data:`repro.obs.catalog.METRIC_CATALOG`) are contracts consumers
replay against.  Runtime validation catches a bad event only when the
offending path executes; these rules close the gap statically:

* every literal event name at an ``.emit(...)`` site must be a schema event;
* every schema event must be emitted by at least one site in the tree;
* a non-literal event name (``tracer.emit(obj["ev"], ...)``) is flagged —
  it cannot be checked, so it needs an explicit ``# lint: allow`` with a
  human on the hook;
* every literal ``repro_*`` family name at a ``.counter/.gauge/.histogram``
  site must be declared in the catalog, and every declared name must be used;
* a *dynamic* family name is flagged when the receiver is registry-shaped
  (an identifier ending in ``registry``) or the name is an f-string with a
  ``repro_`` literal prefix — those are ObsRegistry registrations the
  catalog cross-check cannot see, so they must be made literal (or allowed
  explicitly).  Sim-internal tallies on other receivers stay out of scope.

The "declared but never used" direction only fires when the scanned tree
contains the schema module itself (``repro.obs.trace`` / ``repro.obs.catalog``)
— a partial tree, like a rule-fixture directory, is never a complete witness
of usage.  Expected sets are injectable for exactly that kind of test.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.astutil import module_string_constants
from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule

__all__ = ["TraceSchemaRule", "MetricSchemaRule"]

#: Module that declares EVENT_SCHEMA (completeness gate + anchor for findings).
_TRACE_MODULE = "repro.obs.trace"
#: Module that declares METRIC_CATALOG.
_CATALOG_MODULE = "repro.obs.catalog"

_METRIC_METHODS = ("counter", "gauge", "histogram")


def _first_arg_literal(call: ast.Call, constants: Dict[str, str]) -> str | None:
    """The call's first positional argument as a string, resolving
    module-level constants (e.g. ``SPAN_METRIC``); ``None`` when dynamic."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.Name):
        return constants.get(arg.id)
    return None


def _receiver_identifier(func: ast.Attribute) -> str | None:
    """The final identifier of the call's receiver (``self._registry`` ->
    ``_registry``, ``registry`` -> ``registry``); ``None`` for expressions."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _repro_fstring_prefix(call: ast.Call) -> bool:
    """Is the first argument an f-string whose literal head says ``repro_``?"""
    if not call.args:
        return False
    arg = call.args[0]
    if not isinstance(arg, ast.JoinedStr) or not arg.values:
        return False
    head = arg.values[0]
    return (
        isinstance(head, ast.Constant)
        and isinstance(head.value, str)
        and head.value.startswith("repro_")
    )


@register_rule
class TraceSchemaRule:
    """Cross-check ``.emit(...)`` sites against ``EVENT_SCHEMA``."""

    rule_id = "trace-schema"
    description = (
        "every emitted trace event must exist in EVENT_SCHEMA, every schema "
        "event must have an emission site, and event names must be literal"
    )

    def __init__(self, expected_events: frozenset[str] | None = None) -> None:
        if expected_events is None:
            from repro.obs.trace import EVENT_SCHEMA

            expected_events = frozenset(EVENT_SCHEMA)
        self.expected_events = expected_events
        #: (event, module relpath, line) for every literal emission seen.
        self.emitted: List[Tuple[str, str, int]] = []

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag emitted event names missing from ``EVENT_SCHEMA``."""
        if module.module == _TRACE_MODULE:
            # The schema module's own docstrings/validators, not emission sites.
            return
        constants = module_string_constants(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            event = _first_arg_literal(node, constants)
            if event is None:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "dynamic event name in .emit(...) cannot be checked "
                        "against EVENT_SCHEMA; emit a literal or allow explicitly"
                    ),
                )
                continue
            self.emitted.append((event, module.relpath, node.lineno))
            if event not in self.expected_events:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"event {event!r} is emitted here but not declared in "
                        f"EVENT_SCHEMA"
                    ),
                )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """Flag declared events that no scanned module ever emits."""
        schema_module = context.module_named(_TRACE_MODULE)
        if schema_module is None:
            return  # partial tree: usage cannot be decided
        emitted_names = {event for event, _, _ in self.emitted}
        for event in sorted(self.expected_events - emitted_names):
            yield Finding(
                rule=self.rule_id,
                path=schema_module.relpath,
                line=1,
                col=0,
                message=(
                    f"EVENT_SCHEMA declares {event!r} but no module emits it; "
                    f"remove the entry or instrument the producer"
                ),
            )


@register_rule
class MetricSchemaRule:
    """Cross-check ``repro_*`` metric family names against METRIC_CATALOG."""

    rule_id = "metric-schema"
    description = (
        "every repro_* metric family used against an ObsRegistry must be "
        "declared in repro.obs.catalog.METRIC_CATALOG, and vice versa"
    )

    def __init__(self, catalog: frozenset[str] | None = None) -> None:
        if catalog is None:
            from repro.obs.catalog import METRIC_CATALOG

            catalog = METRIC_CATALOG
        self.catalog = catalog
        self.used: List[Tuple[str, str, int]] = []

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag registered metric names missing from ``METRIC_CATALOG``."""
        if module.module in (_CATALOG_MODULE, "repro.obs.registry"):
            return
        constants = module_string_constants(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _METRIC_METHODS
            ):
                continue
            name = _first_arg_literal(node, constants)
            if name is None:
                receiver = _receiver_identifier(node.func)
                registry_shaped = receiver is not None and receiver.lower().endswith(
                    "registry"
                )
                if registry_shaped or _repro_fstring_prefix(node):
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "dynamic metric family name at an ObsRegistry "
                            "registration site cannot be checked against "
                            "METRIC_CATALOG; use a literal or allow explicitly"
                        ),
                    )
                continue
            if not name.startswith("repro_"):
                # Sim-internal tallies are out of scope; the repro_ prefix is
                # what marks an ObsRegistry family.
                continue
            self.used.append((name, module.relpath, node.lineno))
            if name not in self.catalog:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"metric family {name!r} is not declared in "
                        f"repro.obs.catalog.METRIC_CATALOG"
                    ),
                )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """Flag catalogued metrics that no scanned module registers."""
        catalog_module = context.module_named(_CATALOG_MODULE)
        if catalog_module is None:
            return
        used_names = {name for name, _, _ in self.used}
        for name in sorted(self.catalog - used_names):
            yield Finding(
                rule=self.rule_id,
                path=catalog_module.relpath,
                line=1,
                col=0,
                message=(
                    f"METRIC_CATALOG declares {name!r} but no registration "
                    f"site uses it; remove the entry or wire the producer"
                ),
            )
