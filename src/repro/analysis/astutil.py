"""Small AST helpers shared by the rules: import-aware name resolution.

Rules reason about *qualified* call targets ("time.time",
"datetime.datetime.now", "numpy.random.default_rng") regardless of how the
module spelled the import (``import numpy as np``, ``from time import
perf_counter``, …).  :class:`ImportMap` builds the alias table for one
module; :func:`resolve_call_name` folds an attribute chain through it.
"""

from __future__ import annotations

import ast
from typing import Dict

__all__ = [
    "ImportMap",
    "dotted_name",
    "resolve_call_name",
    "module_string_constants",
]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias -> fully qualified dotted name, from a module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds the name ``a``.
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def qualify(self, dotted: str) -> str:
        """Replace the leading alias segment with its qualified form."""
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved


def resolve_call_name(call: ast.Call, imports: ImportMap) -> str | None:
    """The qualified dotted target of a call, or ``None`` if not a name chain."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return imports.qualify(name)


def module_string_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (metric-name constants)."""
    constants: Dict[str, str] = {}
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not (
            isinstance(value, ast.Constant) and isinstance(value.value, str)
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = value.value
    return constants
