"""Domain-aware static analysis for the reproduction's own invariants.

The repository's hardest contracts — byte-identical traces for any worker
count, seed-derived fault plans, schema-versioned JSONL events, the typed
exception hierarchy, and the paper's unit discipline (minutes of movie time
vs. stream counts) — are runtime-invisible until an integration test happens
to execute the offending path.  This package checks them *statically*, from
the AST, before any simulation runs:

* :mod:`repro.analysis.determinism` — wall-clock calls, unseeded RNG
  construction and set-ordering-dependent iteration in determinism-scoped
  code;
* :mod:`repro.analysis.schema_check` — every trace event emitted anywhere
  must exist in :data:`repro.obs.trace.EVENT_SCHEMA` (and vice versa), and
  every ``repro_*`` metric family must be declared in
  :data:`repro.obs.catalog.METRIC_CATALOG` (and vice versa);
* :mod:`repro.analysis.hygiene` — library code raises the typed hierarchy of
  :mod:`repro.exceptions`, never bare builtins, and broad ``except`` blocks
  must re-raise with context;
* :mod:`repro.analysis.units` — names that encode paper units (``*_minutes``,
  ``w``, ``l``, ``B``, ``n``, …) may not be mixed across unit families
  without an explicit conversion;
* :mod:`repro.analysis.concurrency` — a whole-project call graph with an
  async-reachability closure: blocking calls reachable from the event loop,
  shared-state read-modify-write spanning an ``await``, dropped coroutines
  and task handles, and the engine's session lifecycle diffed against the
  transition table declared in :mod:`repro.service.protocol`.

Rules are pluggable (:class:`~repro.analysis.base.Rule` +
:func:`~repro.analysis.base.register_rule`, mirroring
``repro.experiments.registry``), findings can be suppressed inline with
``# lint: allow(<rule-id>)`` or ratcheted via a committed baseline file, and
the whole pass is exposed as ``repro-vod lint`` (exit 0 clean, 2 findings).
"""

from __future__ import annotations

from repro.analysis.base import (
    Finding,
    LintContext,
    ModuleInfo,
    Rule,
    available_rules,
    create_rules,
    register_rule,
)
from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintReport, collect_modules, run_lint

# Importing the rule modules registers every built-in rule.
from repro.analysis import concurrency as _concurrency  # noqa: F401
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import hygiene as _hygiene  # noqa: F401
from repro.analysis import schema_check as _schema_check  # noqa: F401
from repro.analysis import units as _units  # noqa: F401

__all__ = [
    "Finding",
    "LintContext",
    "ModuleInfo",
    "Rule",
    "Baseline",
    "LintReport",
    "available_rules",
    "create_rules",
    "register_rule",
    "collect_modules",
    "run_lint",
]
