"""Determinism lints: wall clock, unseeded RNG, set-ordering iteration.

The reproducibility contract (PR 2–4) demands that traces and metrics be a
pure function of the inputs: byte-identical for any worker count, host or
run.  Three classes of code break that silently:

* **Wall-clock reads** (``time.time``, ``datetime.now``, …) leak host time
  into values that may reach a trace or a stable-tier metric;
* **Unseeded RNG construction** (``default_rng()`` with no seed, the global
  ``random``/``numpy.random`` state) decouples results from the seed
  lineage of :mod:`repro.sim.rng`;
* **Iteration over sets** orders elements by hash — for strings that order
  changes with ``PYTHONHASHSEED``, so any loop that feeds a trace, a metric
  or a task list from a set is run-to-run nondeterministic.

Wall-clock and set-order checks apply to the *determinism scope*: everything
under ``repro.sim``, ``repro.parallel``, ``repro.obs``, plus any module that
emits trace events (``.emit(...)`` call sites).  Unseeded-RNG construction is
never acceptable in this library, so that check covers every module.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.astutil import ImportMap, resolve_call_name
from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule

__all__ = [
    "WallClockRule",
    "UnseededRngRule",
    "SetOrderRule",
    "in_determinism_scope",
]

#: Dotted call targets that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Package prefixes always inside the determinism scope.  The numerics and
#: distribution kernels are included because the batched backends promise
#: byte-identical replay of the scalar oracle — any hidden entropy or
#: wall-clock read there would silently break the equivalence gate.
_SCOPE_PREFIXES = (
    "repro.sim.",
    "repro.parallel.",
    "repro.obs.",
    "repro.numerics.",
    "repro.distributions.",
)
_SCOPE_MODULES = (
    "repro.sim",
    "repro.parallel",
    "repro.obs",
    "repro.numerics",
    "repro.distributions",
)

#: numpy.random attributes that are *constructors/lineage*, not the global
#: state; calling anything else on numpy.random samples the process-global
#: generator.
_NP_RANDOM_SAFE = frozenset(
    {"SeedSequence", "Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
     "default_rng", "RandomState", "BitGenerator"}
)

#: Constructors that take a seed as their first argument and silently fall
#: back to entropy when called without one.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
    }
)


def in_determinism_scope(module: ModuleInfo) -> bool:
    """True for ``repro.sim``/``repro.parallel``/``repro.obs`` and any module
    that contains a trace-emission site (an ``.emit(...)`` attribute call)."""
    if module.module in _SCOPE_MODULES or module.module.startswith(_SCOPE_PREFIXES):
        return True
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            return True
    return False


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register_rule
class WallClockRule:
    """Flag wall-clock reads inside the determinism scope."""

    rule_id = "determinism-wallclock"
    description = (
        "no wall-clock reads (time.time, datetime.now, perf_counter, ...) in "
        "repro.sim/repro.parallel/repro.obs or trace-emitting modules"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag wall-clock calls in determinism-scoped modules."""
        if not in_determinism_scope(module):
            return
        imports = ImportMap(module.tree)
        for call in _calls(module.tree):
            target = resolve_call_name(call, imports)
            if target in WALL_CLOCK_CALLS:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"wall-clock call {target}() in determinism-scoped module "
                        f"{module.module}; use the simulation clock (env.now) or a "
                        f"process-tier span"
                    ),
                )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()


@register_rule
class UnseededRngRule:
    """Flag RNG construction or use that is not derived from an explicit seed."""

    rule_id = "determinism-unseeded-rng"
    description = (
        "RNGs must be constructed from an explicit seed/SeedSequence; the "
        "global random/numpy.random state is forbidden everywhere"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag RNG constructors/calls with no explicit seed."""
        imports = ImportMap(module.tree)
        for call in _calls(module.tree):
            target = resolve_call_name(call, imports)
            if target is None:
                continue
            if target in _SEEDABLE_CONSTRUCTORS and not call.args and not call.keywords:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{target}() constructed without a seed; results will "
                        f"depend on OS entropy instead of the run's seed lineage"
                    ),
                )
                continue
            if target.startswith("numpy.random."):
                attr = target.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_SAFE:
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{target}() samples numpy's process-global RNG; draw "
                            f"from a seeded Generator (repro.sim.rng) instead"
                        ),
                    )
            elif target.startswith("random.") and target != "random.Random":
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{target}() uses the stdlib's process-global RNG; draw "
                        f"from a seeded random.Random or numpy Generator instead"
                    ),
                )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()


def _set_construct(node: ast.expr, imports: ImportMap) -> bool:
    """True for a set display or a direct ``set(...)``/``frozenset(...)`` call."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        target = resolve_call_name(node, imports)
        return target in ("set", "frozenset")
    return False


@register_rule
class SetOrderRule:
    """Flag iteration whose order is a set's hash order (PYTHONHASHSEED)."""

    rule_id = "determinism-set-order"
    description = (
        "no iteration over set displays/set()/frozenset() in determinism-"
        "scoped modules; sort first (hash order varies with PYTHONHASHSEED)"
    )

    #: Wrapping calls whose output order is their argument's iteration order.
    _ORDER_PRESERVING = ("list", "tuple", "enumerate", "iter")

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag order-dependent iteration over sets in scoped modules."""
        if not in_determinism_scope(module):
            return
        imports = ImportMap(module.tree)

        def finding(node: ast.AST) -> Finding:
            return Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "iteration order of a set depends on PYTHONHASHSEED; wrap "
                    "it in sorted(...) before iterating"
                ),
            )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _set_construct(node.iter, imports):
                    yield finding(node)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for comp in node.generators:
                    if _set_construct(comp.iter, imports):
                        yield finding(node)
            elif isinstance(node, ast.Call):
                target = resolve_call_name(node, imports)
                if target in self._ORDER_PRESERVING and node.args:
                    if _set_construct(node.args[0], imports):
                        yield finding(node)

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()
