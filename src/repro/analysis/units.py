"""Config-unit lint: don't mix paper-unit families without a conversion.

Everything in the model is minutes of movie time (``B``, ``w``, ``l``,
``*_minutes``), counts (``n``, ``num_*``, ``*_streams``) or wall seconds
(``*_seconds``, from spans and shard telemetry).  Adding, subtracting or
comparing across families is always a bug — ``buffer_minutes + num_streams``
type-checks and simulates, it just answers a question nobody asked.

The check is deliberately conservative to stay false-positive free in
numerical code: it only fires when *both* operands of ``+``/``-`` or a
comparison are plain names/attributes whose names resolve to *different*
unit families, or when a call passes a keyword argument whose name encodes
one family a value whose name encodes another.  Multiplication and division
are exempt (rates convert units), and any wrapping call (an explicit
conversion function) breaks the pattern and silences the rule.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule

__all__ = ["UnitMixRule", "unit_family"]

#: family -> (exact names, suffixes, prefixes)
_FAMILIES: dict[str, tuple[frozenset[str], tuple[str, ...], tuple[str, ...]]] = {
    "minutes": (
        frozenset({"w", "l", "B", "horizon", "warmup"}),
        ("_minutes",),
        (),
    ),
    "seconds": (frozenset(), ("_seconds", "_secs"), ()),
    "count": (
        frozenset({"n"}),
        ("_count", "_streams", "_partitions"),
        ("num_",),
    ),
}


def unit_family(name: str) -> str | None:
    """The unit family a name encodes, or ``None`` for unit-free names."""
    for family, (exact, suffixes, prefixes) in _FAMILIES.items():
        if name in exact:
            return family
        if any(name.endswith(suffix) for suffix in suffixes):
            return family
        if any(name.startswith(prefix) for prefix in prefixes):
            return family
    return None


def _terminal_name(node: ast.expr) -> str | None:
    """The final identifier of a plain Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class UnitMixRule:
    """Flag additive/comparison mixing of names from different unit families."""

    rule_id = "unit-mix"
    description = (
        "names encoding paper units (*_minutes, w/l/B, n/num_*, *_seconds) "
        "must not be added/subtracted/compared across families without an "
        "explicit conversion call"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag additive mixing of variables from different unit families."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(module, node, node.left, node.right)
            elif isinstance(node, ast.Compare) and len(node.comparators) == 1:
                yield from self._check_pair(
                    module, node, node.left, node.comparators[0]
                )
            elif isinstance(node, ast.Call):
                yield from self._check_keywords(module, node)

    def _check_pair(
        self,
        module: ModuleInfo,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterable[Finding]:
        left_name, right_name = _terminal_name(left), _terminal_name(right)
        if left_name is None or right_name is None:
            return
        left_family, right_family = unit_family(left_name), unit_family(right_name)
        if left_family is None or right_family is None:
            return
        if left_family != right_family:
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"mixing unit families: {left_name!r} is {left_family} but "
                    f"{right_name!r} is {right_family}; convert explicitly"
                ),
            )

    def _check_keywords(
        self, module: ModuleInfo, call: ast.Call
    ) -> Iterable[Finding]:
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            target_family = unit_family(keyword.arg)
            if target_family is None:
                continue
            value_name = _terminal_name(keyword.value)
            if value_name is None:
                continue
            value_family = unit_family(value_name)
            if value_family is None or value_family == target_family:
                continue
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=keyword.value.lineno,
                col=keyword.value.col_offset,
                message=(
                    f"argument {keyword.arg!r} expects {target_family} but "
                    f"{value_name!r} is {value_family}; convert explicitly"
                ),
            )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()
