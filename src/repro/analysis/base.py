"""Core types of the static-analysis pass: findings, modules, rules.

A :class:`Rule` inspects one parsed module at a time through ``check`` and
may run a whole-tree pass in ``finalize`` (used by the schema cross-checks,
which must see every emission site before deciding that a declared event is
orphaned).  Rules register a zero-argument factory under their id — the
registry mirrors ``repro.experiments.registry`` — so every lint run gets
fresh, stateless-by-construction rule instances.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Protocol, Set

from repro.exceptions import ConfigurationError

__all__ = [
    "Finding",
    "ModuleInfo",
    "LintContext",
    "Rule",
    "RULE_FACTORIES",
    "register_rule",
    "available_rules",
    "create_rules",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line.

    The :attr:`fingerprint` deliberately excludes the line number so a
    baseline entry survives unrelated edits that shift code up or down; it
    changes only when the offending construct itself (rule, file, message)
    changes.
    """

    rule: str
    path: str  # repo-relative POSIX path
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline file (line-independent)."""
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def render(self) -> str:
        """One ``path:line:col: rule: message`` diagnostic line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable form (``--format json`` and CI artifacts)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleInfo:
    """One parsed source module plus its inline suppression pragmas."""

    path: Path  # absolute path on disk
    relpath: str  # POSIX path relative to the scanned root
    module: str  # dotted module name, e.g. "repro.sim.rng"
    source: str
    tree: ast.Module
    #: line number -> rule ids allowed on that line ("*" allows every rule).
    allow: Dict[int, Set[str]] = field(default_factory=dict)

    def allows(self, rule_id: str, line: int) -> bool:
        """True when ``# lint: allow(rule_id)`` sits on ``line``."""
        allowed = self.allow.get(line)
        return allowed is not None and (rule_id in allowed or "*" in allowed)


@dataclass
class LintContext:
    """Everything a rule may see: the scanned root and every module in it."""

    root: Path
    modules: List[ModuleInfo]

    def module_named(self, dotted: str) -> ModuleInfo | None:
        """The scanned module with dotted name ``dotted``, if present."""
        for info in self.modules:
            if info.module == dotted:
                return info
        return None


class Rule(Protocol):
    """The pluggable rule interface.

    ``check`` yields findings for one module; ``finalize`` runs after every
    module was checked and yields whole-tree findings (rules without a
    cross-module pass return nothing from it).
    """

    rule_id: str
    description: str

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Findings local to ``module``."""
        ...  # pragma: no cover - protocol

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """Whole-tree findings, after every module was checked."""
        ...  # pragma: no cover - protocol


#: Rule id -> zero-argument factory producing a fresh rule instance.
RULE_FACTORIES: Dict[str, Callable[[], Rule]] = {}


def register_rule(factory: Callable[[], Rule]) -> Callable[[], Rule]:
    """Register a rule factory under its instance's ``rule_id``.

    Usable as a class decorator (a class is its own zero-arg factory).
    """
    rule_id = factory().rule_id
    if rule_id in RULE_FACTORIES:
        raise ConfigurationError(f"rule {rule_id!r} registered twice")
    RULE_FACTORIES[rule_id] = factory
    return factory


def available_rules() -> list[tuple[str, str]]:
    """``(rule_id, description)`` pairs in presentation order."""
    return [
        (rule_id, RULE_FACTORIES[rule_id]().description)
        for rule_id in sorted(RULE_FACTORIES)
    ]


def create_rules(rule_ids: Iterable[str] | None = None) -> list[Rule]:
    """Fresh instances of the requested rules (default: all registered)."""
    if rule_ids is None:
        selected = sorted(RULE_FACTORIES)
    else:
        selected = list(rule_ids)
        unknown = [rule_id for rule_id in selected if rule_id not in RULE_FACTORIES]
        if unknown:
            raise ConfigurationError(
                f"unknown rule(s) {unknown}; available: {sorted(RULE_FACTORIES)}"
            )
    return [RULE_FACTORIES[rule_id]() for rule_id in selected]
