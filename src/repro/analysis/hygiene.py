"""Exception hygiene: library code speaks the typed hierarchy.

:mod:`repro.exceptions` gives callers a single base (:class:`ReproError`)
with discriminating subclasses, most of which remain ``except ValueError``-
compatible at the boundary.  Two habits erode that contract:

* raising bare builtins (``ValueError``, ``RuntimeError``, ``Exception``)
  from library code — callers lose the typed catch;
* broad ``except Exception`` handlers that *absorb* anything — these hide
  real failures.  A broad handler is acceptable only when it immediately
  re-raises with context (``raise Typed(...) from exc`` or a bare
  ``raise``), the pattern the observer dispatch uses.

The CLI boundary (``repro.cli``, ``repro.__main__``) is allowlisted: it is
the one place builtin-typed errors from user input are part of the job.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule

__all__ = ["TypedRaiseRule", "BroadExceptRule"]

#: Builtins library code must not raise directly (use repro.exceptions).
_FORBIDDEN_RAISES = frozenset(
    {"Exception", "BaseException", "ValueError", "TypeError", "RuntimeError",
     "ArithmeticError", "OSError", "IOError"}
)

#: Modules allowed to speak builtins: the process boundary.
_BOUNDARY_MODULES = frozenset({"repro.cli", "repro.__main__"})


def _is_boundary(module: ModuleInfo) -> bool:
    return module.module in _BOUNDARY_MODULES


def _raised_name(node: ast.Raise) -> str | None:
    """The bare name of ``raise Name(...)`` / ``raise Name``, else ``None``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


@register_rule
class TypedRaiseRule:
    """Flag ``raise <builtin>`` in library modules."""

    rule_id = "exception-hygiene"
    description = (
        "library code raises the typed hierarchy in repro.exceptions, never "
        "bare ValueError/TypeError/RuntimeError/Exception (CLI boundary exempt)"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag ``raise`` of bare builtin exception types."""
        if _is_boundary(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name in _FORBIDDEN_RAISES:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"raise {name} in library code; raise the matching "
                        f"repro.exceptions type instead (most stay "
                        f"except-{name}-compatible)"
                    ),
                )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()


def _reraises_with_context(handler: ast.ExceptHandler) -> bool:
    """True when the handler's body re-raises: a bare ``raise``, or raising a
    non-builtin exception chained ``from`` the caught name (or with the caught
    name passed/formatted into it)."""
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:  # bare ``raise``
            return True
        name = _raised_name(node)
        if name is not None and name not in _FORBIDDEN_RAISES:
            # ``raise Typed(...) from exc`` — or without the chain; either
            # way the failure surfaces as a typed error, not silence.
            return True
    return False


@register_rule
class BroadExceptRule:
    """Flag ``except Exception``/bare ``except:`` that swallow failures."""

    rule_id = "broad-except"
    description = (
        "broad except handlers must re-raise with context (raise Typed(...) "
        "from exc); silently absorbing Exception is forbidden (CLI exempt)"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag broad ``except`` handlers that do not re-raise with context."""
        if _is_boundary(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name)
                and node.type.id in ("Exception", "BaseException")
            )
            if not broad:
                continue
            if _reraises_with_context(node):
                continue
            caught = "bare except" if node.type is None else f"except {node.type.id}"
            yield Finding(
                rule=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{caught} absorbs every failure; catch the specific typed "
                    f"errors or re-raise a repro.exceptions type with context"
                ),
            )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()
