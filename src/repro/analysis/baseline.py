"""Baseline file: the ratchet that lets the lint gate start green.

A baseline is a committed JSON list of finding fingerprints that are
*known and deliberately tolerated*.  The gate fails on any finding not in
the baseline, so new violations cannot land; burning down the baseline
(fixing an entry, then regenerating with ``--update-baseline``) only ever
shrinks it.  Fingerprints are line-independent
(:attr:`repro.analysis.base.Finding.fingerprint`), so unrelated edits do not
invalidate entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.base import Finding
from repro.exceptions import ConfigurationError

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """A set of tolerated finding fingerprints, with human-readable context."""

    #: fingerprint -> {"rule", "path", "message"} (context only; the
    #: fingerprint alone decides suppression).
    entries: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline {path} must be a JSON object with version "
                f"{BASELINE_VERSION}, got {data!r:.80}"
            )
        suppressions = data.get("suppressions", [])
        entries: Dict[str, dict] = {}
        for entry in suppressions:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise ConfigurationError(
                    f"baseline {path}: every suppression needs a fingerprint"
                )
            entries[entry["fingerprint"]] = entry
        return cls(entries=entries)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline tolerating exactly ``findings`` (``--update-baseline``)."""
        entries = {
            finding.fingerprint: {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
            }
            for finding in findings
        }
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline deterministically (sorted, trailing newline)."""
        payload = {
            "version": BASELINE_VERSION,
            "suppressions": [
                self.entries[fingerprint]
                for fingerprint in sorted(
                    self.entries,
                    key=lambda fp: (
                        self.entries[fp].get("path", ""),
                        self.entries[fp].get("rule", ""),
                        fp,
                    ),
                )
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, baselined)."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if finding.fingerprint in self.entries:
                suppressed.append(finding)
            else:
                new.append(finding)
        return new, suppressed

    def stale_entries(self, findings: Iterable[Finding]) -> List[dict]:
        """Entries whose finding no longer occurs — candidates for removal."""
        seen = {finding.fingerprint for finding in findings}
        return [
            self.entries[fingerprint]
            for fingerprint in sorted(self.entries)
            if fingerprint not in seen
        ]

    def __len__(self) -> int:
        return len(self.entries)
