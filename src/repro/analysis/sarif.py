"""SARIF 2.1.0 rendering of a lint report.

SARIF (Static Analysis Results Interchange Format) is the shape code hosts
ingest for inline annotation — one ``run`` with a tool descriptor listing
every rule that executed, and one ``result`` per finding.  The emitted
subset is deliberately minimal but valid: ``ruleId``, a text ``message``, a
single physical location with 1-based line/column, and the repository's own
line-independent fingerprint under ``fingerprints`` so external trackers
dedupe findings exactly the way the local baseline does.

Suppressed findings (pragma or baseline) are *not* emitted: the SARIF
artifact mirrors what the exit code judges, nothing more.
"""

from __future__ import annotations

from repro.analysis.base import RULE_FACTORIES, Finding
from repro.analysis.engine import LintReport

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA", "TOOL_NAME"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-vod-lint"

#: Key under ``result.fingerprints`` carrying the baseline fingerprint.
FINGERPRINT_KEY = "reproVodLint/v1"


def _rule_descriptor(rule_id: str) -> dict:
    """The ``reportingDescriptor`` for one rule id."""
    descriptor: dict = {"id": rule_id}
    factory = RULE_FACTORIES.get(rule_id)
    if factory is not None:
        descriptor["shortDescription"] = {"text": factory().description}
    return descriptor


def _result(finding: Finding) -> dict:
    """One SARIF ``result`` object for a finding."""
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; ast columns are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "fingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }


def render_sarif(report: LintReport) -> dict:
    """The SARIF 2.1.0 log object for ``report`` (serialise with ``json``)."""
    rule_ids = report.rules_run or sorted(
        {finding.rule for finding in report.findings}
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": [
                            _rule_descriptor(rule_id)
                            for rule_id in sorted(rule_ids)
                        ],
                    }
                },
                "results": [_result(finding) for finding in report.findings],
            }
        ],
    }
