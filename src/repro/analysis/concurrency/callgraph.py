"""Project call graph with async-reachability, built from one parsed tree.

The graph is deliberately *module-level and name-based* — no type inference,
no runtime imports.  Precision comes from three resolution strategies, tried
in order for every call site:

1. **Lexical** — bare names resolve to sibling nested functions, then
   module-level functions of the same module, then imports
   (:class:`~repro.analysis.astutil.ImportMap` folds aliases);
   ``ClassName(...)`` resolves to ``ClassName.__init__``.
2. **Self dispatch** — ``self.meth(...)``/``cls.meth(...)`` resolve inside
   the enclosing class, then through its project-local base classes.
3. **Unique-name CHA** — ``obj.meth(...)`` on an arbitrary receiver
   resolves only when *exactly one* project class defines ``meth``; an
   ambiguous method name produces no edge.  This is the documented
   imprecision trade: a unique name is almost certainly that method, while
   guessing among several would invent reachability (and findings) out of
   thin air.

Async-reachability is a breadth-first fixpoint seeded at every ``async
def``: any function a reachable function calls is reachable.  Two documented
exceptions keep the analysis honest:

* calls nested inside the argument list of ``loop.run_in_executor(...)`` or
  ``asyncio.to_thread(...)`` contribute no edges — that argument runs on a
  worker thread, which is exactly the sanctioned way to hop blocking work
  off the loop;
* a function *referenced* but not called (``to_thread(func)``,
  ``partial(func, x)``) contributes no edge either, for the same reason.

The fixpoint records a parent pointer per function, so a rule can render
the full chain from the async entry point to the offending site.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import ImportMap, dotted_name
from repro.analysis.base import LintContext, ModuleInfo

__all__ = ["FunctionInfo", "ProjectCallGraph", "EXECUTOR_HOPS", "graph_for"]

#: Call targets whose arguments run off the event loop: edges collected
#: inside their argument lists would invent on-loop reachability.
EXECUTOR_HOPS = frozenset(
    {"asyncio.to_thread", "run_in_executor", "asyncio.get_event_loop"}
)


@dataclass(eq=False)
class FunctionInfo:
    """One function or method definition in the scanned tree."""

    qname: str  # e.g. "repro.service.engine.AdmissionEngine.handle"
    module: str  # dotted module name
    relpath: str  # repo-relative POSIX path of the module
    name: str  # bare function name
    cls: Optional[str]  # enclosing class name, or None for module level
    is_async: bool
    lineno: int
    node: ast.AST = field(repr=False)


def _is_executor_hop(call: ast.Call) -> bool:
    """Does this call ship its arguments off the event loop?"""
    target = dotted_name(call.func)
    if target is None:
        return False
    return target in EXECUTOR_HOPS or target.endswith(".run_in_executor") or (
        target.endswith(".to_thread")
    )


class _CallCollector(ast.NodeVisitor):
    """Collect the Call nodes of one function body, skipping nested defs
    and the argument lists of executor hops."""

    def __init__(self) -> None:
        self.calls: List[ast.Call] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested definitions own their calls

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # a lambda body runs when called, not here

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        # Always look inside the callee expression; the arguments only when
        # they stay on the loop.
        self.visit(node.func)
        if not _is_executor_hop(node):
            for arg in node.args:
                self.visit(arg)
            for keyword in node.keywords:
                self.visit(keyword.value)


class ProjectCallGraph:
    """The whole-tree call graph plus its async-reachability closure."""

    def __init__(self) -> None:
        #: qname -> FunctionInfo for every def in the tree.
        self.functions: Dict[str, FunctionInfo] = {}
        #: caller qname -> callee qnames (deterministically sorted on read).
        self.edges: Dict[str, Set[str]] = {}
        #: method bare name -> sorted qnames of every class method using it.
        self._methods_by_name: Dict[str, List[str]] = {}
        #: (module, class) -> qualified base-class names.
        self._class_bases: Dict[Tuple[str, str], List[str]] = {}
        #: qualified class name -> (module, class name).
        self._classes: Dict[str, Tuple[str, str]] = {}
        #: qname -> qname of the caller that first reached it (async BFS).
        self._reached_via: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, context: LintContext) -> "ProjectCallGraph":
        """Two passes over the parsed tree: collect defs, then resolve calls."""
        graph = cls()
        for module in context.modules:
            graph._collect_definitions(module)
        for name in graph._methods_by_name:
            graph._methods_by_name[name].sort()
        for module in context.modules:
            graph._collect_edges(module)
        graph._close_async_reachability()
        return graph

    def _collect_definitions(self, module: ModuleInfo) -> None:
        imports = ImportMap(module.tree)

        def walk(body, scope: List[str], cls_name: Optional[str]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = ".".join([module.module, *scope, node.name])
                    info = FunctionInfo(
                        qname=qname,
                        module=module.module,
                        relpath=module.relpath,
                        name=node.name,
                        cls=cls_name,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                        lineno=node.lineno,
                        node=node,
                    )
                    self.functions[qname] = info
                    if cls_name is not None:
                        self._methods_by_name.setdefault(node.name, []).append(qname)
                    walk(node.body, scope + [node.name], None)
                elif isinstance(node, ast.ClassDef):
                    self._classes[f"{module.module}.{node.name}"] = (
                        module.module,
                        node.name,
                    )
                    bases = []
                    for base in node.bases:
                        base_name = dotted_name(base)
                        if base_name is not None:
                            qualified = imports.qualify(base_name)
                            if "." not in base_name:
                                # A bare base name is a sibling class unless
                                # an import rebinds it.
                                local = f"{module.module}.{base_name}"
                                if qualified == base_name:
                                    qualified = local
                            bases.append(qualified)
                    self._class_bases[(module.module, node.name)] = bases
                    walk(node.body, scope + [node.name], node.name)

        walk(module.tree.body, [], None)

    def _method_in_class(
        self, module: str, cls_name: str, method: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve ``method`` in ``cls_name`` or its project-local bases."""
        qname = f"{module}.{cls_name}.{method}"
        if qname in self.functions:
            return qname
        if _depth >= 8:  # cyclic or pathological hierarchies stop here
            return None
        for base in self._class_bases.get((module, cls_name), []):
            resolved = self._classes.get(base)
            if resolved is None:
                continue
            found = self._method_in_class(
                resolved[0], resolved[1], method, _depth + 1
            )
            if found is not None:
                return found
        return None

    def _resolve_call(
        self,
        call: ast.Call,
        module: ModuleInfo,
        imports: ImportMap,
        scope: List[str],
        cls_name: Optional[str],
    ) -> Optional[str]:
        target = dotted_name(call.func)
        if target is None:
            return None
        head, _, rest = target.partition(".")
        if not rest:
            # Bare name: sibling nested def, module-level def, import.
            for depth in range(len(scope), -1, -1):
                candidate = ".".join([module.module, *scope[:depth], target])
                if candidate in self.functions:
                    return candidate
            qualified = imports.qualify(target)
            if qualified in self.functions:
                return qualified
            if qualified in self._classes:
                mod, klass = self._classes[qualified]
                return self._method_in_class(mod, klass, "__init__")
            local_class = f"{module.module}.{target}"
            if local_class in self._classes:
                return self._method_in_class(module.module, target, "__init__")
            return None
        if head in ("self", "cls") and cls_name is not None:
            parts = rest.split(".")
            if len(parts) == 1:
                return self._method_in_class(module.module, cls_name, parts[0])
            # self.attr.meth(...): fall through to unique-name CHA below.
        qualified = imports.qualify(target)
        if qualified in self.functions:
            return qualified
        if qualified in self._classes:
            mod, klass = self._classes[qualified]
            return self._method_in_class(mod, klass, "__init__")
        # Unique-name CHA: obj.meth(...) resolves only when one class
        # anywhere in the project defines meth.
        method = target.rsplit(".", 1)[1]
        candidates = self._methods_by_name.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _collect_edges(self, module: ModuleInfo) -> None:
        imports = ImportMap(module.tree)

        def walk(body, scope: List[str], cls_name: Optional[str]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = ".".join([module.module, *scope, node.name])
                    collector = _CallCollector()
                    for stmt in node.body:
                        collector.visit(stmt)
                    inner_scope = scope + [node.name]
                    for call in collector.calls:
                        callee = self._resolve_call(
                            call, module, imports, inner_scope, cls_name
                        )
                        if callee is not None and callee != qname:
                            self.edges.setdefault(qname, set()).add(callee)
                    walk(node.body, inner_scope, None)
                elif isinstance(node, ast.ClassDef):
                    walk(node.body, scope + [node.name], node.name)

        walk(module.tree.body, [], None)

    def _close_async_reachability(self) -> None:
        """BFS fixpoint from every ``async def``, recording parent pointers."""
        queue: deque[str] = deque()
        for qname in sorted(self.functions):
            if self.functions[qname].is_async:
                self._reached_via[qname] = None
                queue.append(qname)
        while queue:
            caller = queue.popleft()
            for callee in sorted(self.edges.get(caller, ())):
                if callee not in self._reached_via:
                    self._reached_via[callee] = caller
                    queue.append(callee)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def callees(self, qname: str) -> List[str]:
        """Sorted resolved callees of ``qname``."""
        return sorted(self.edges.get(qname, ()))

    def is_async_reachable(self, qname: str) -> bool:
        """Is ``qname`` an ``async def`` or transitively called from one?"""
        return qname in self._reached_via

    def async_reachable(self) -> List[str]:
        """Sorted qnames of every async-reachable function."""
        return sorted(self._reached_via)

    def chain_to(self, qname: str) -> List[str]:
        """The call chain from an async entry point down to ``qname``."""
        chain: List[str] = []
        current: Optional[str] = qname
        while current is not None:
            chain.append(current)
            current = self._reached_via.get(current)
        chain.reverse()
        return chain

    def functions_in(self, module: str) -> Iterator[FunctionInfo]:
        """The functions defined in ``module``, in source order."""
        infos = [
            info for info in self.functions.values() if info.module == module
        ]
        infos.sort(key=lambda info: info.lineno)
        return iter(infos)


def graph_for(context: LintContext) -> ProjectCallGraph:
    """The call graph of ``context``, built once and shared by every rule.

    Four rules run over the same tree in one lint pass; the graph is cached
    on the context so the interprocedural work happens exactly once.
    """
    graph = getattr(context, "_concurrency_graph", None)
    if graph is None:
        graph = ProjectCallGraph.build(context)
        context._concurrency_graph = graph  # type: ignore[attr-defined]
    return graph
