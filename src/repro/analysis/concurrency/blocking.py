"""``async-blocking``: blocking calls reachable from the event loop.

One ``time.sleep`` (or synchronous socket/subprocess/file call) anywhere
below an ``async def`` stalls *every* connection the admission service is
multiplexing — the exact failure mode a single-threaded event loop cannot
absorb.  The rule flags a known-blocking call at any async-reachable site
(:mod:`~repro.analysis.concurrency.callgraph`), and the finding message
carries the call chain from the async entry point so the report reads like
a stack trace instead of a scavenger hunt.

The sanctioned fixes are exactly the ones the analysis already understands:
``await asyncio.sleep(...)`` for delays, ``loop.run_in_executor(...)`` /
``asyncio.to_thread(...)`` for genuinely blocking work (their argument
lists do not propagate reachability), or a ``# lint: allow(async-blocking)``
pragma when a human certifies the call is bounded (e.g. a sub-millisecond
local file append behind a flag).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Tuple

from repro.analysis.astutil import ImportMap, resolve_call_name
from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule
from repro.analysis.concurrency.callgraph import graph_for

__all__ = ["BlockingInAsyncRule", "BLOCKING_CALLS", "BLOCKING_METHOD_NAMES"]

#: Qualified call target -> why it must not run on the event loop.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "sleeps the whole event loop; await asyncio.sleep(...)",
    "socket.create_connection": "synchronous connect blocks the loop",
    "socket.getaddrinfo": "synchronous DNS resolution blocks the loop",
    "socket.gethostbyname": "synchronous DNS resolution blocks the loop",
    "subprocess.run": "waits for a child process on the loop thread",
    "subprocess.call": "waits for a child process on the loop thread",
    "subprocess.check_call": "waits for a child process on the loop thread",
    "subprocess.check_output": "waits for a child process on the loop thread",
    "subprocess.Popen": "spawns a child with blocking pipe semantics",
    "os.system": "waits for a shell on the loop thread",
    "os.popen": "opens a blocking pipe to a shell",
    "os.waitpid": "waits for a child process on the loop thread",
    "urllib.request.urlopen": "synchronous HTTP request blocks the loop",
    "requests.get": "synchronous HTTP request blocks the loop",
    "requests.post": "synchronous HTTP request blocks the loop",
    "requests.request": "synchronous HTTP request blocks the loop",
    "open": "blocking file open/IO on the loop thread",
}

#: Method names (receiver unresolvable) that are blocking file I/O unless
#: they resolve to a project-defined method.
BLOCKING_METHOD_NAMES = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _render_chain(chain: List[str]) -> str:
    """``a -> b -> c`` with the common package prefix kept readable."""
    return " -> ".join(chain)


@register_rule
class BlockingInAsyncRule:
    """Flag known-blocking calls at async-reachable sites."""

    rule_id = "async-blocking"
    description = (
        "no time.sleep/socket/subprocess/file blocking calls reachable from "
        "async def without an executor hop (run_in_executor/to_thread)"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag blocking calls inside async-reachable functions of ``module``."""
        graph = graph_for(context)
        imports = ImportMap(module.tree)
        project_methods = graph._methods_by_name
        for info in graph.functions_in(module.module):
            if not graph.is_async_reachable(info.qname):
                continue
            chain = graph.chain_to(info.qname)
            for call, target, reason in self._blocking_calls(
                info.node, imports, project_methods
            ):
                suffix = (
                    ""
                    if len(chain) == 1
                    else f" (reachable via {_render_chain(chain)})"
                )
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{target}() in async-reachable {info.qname}: {reason}; "
                        f"hop it off the loop with run_in_executor/to_thread"
                        f"{suffix}"
                    ),
                )

    def _blocking_calls(
        self,
        func_node: ast.AST,
        imports: ImportMap,
        project_methods: Dict[str, List[str]],
    ) -> Iterable[Tuple[ast.Call, str, str]]:
        """(call, qualified target, reason) for blocking calls in one body."""
        from repro.analysis.concurrency.callgraph import _CallCollector

        collector = _CallCollector()
        for stmt in func_node.body:  # type: ignore[attr-defined]
            collector.visit(stmt)
        for call in collector.calls:
            target = resolve_call_name(call, imports)
            if target is None:
                continue
            reason = BLOCKING_CALLS.get(target)
            if reason is not None:
                yield call, target, reason
                continue
            method = target.rsplit(".", 1)[-1]
            if (
                "." in target
                and method in BLOCKING_METHOD_NAMES
                and method not in project_methods
            ):
                yield call, target, "blocking file I/O on the loop thread"

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings beyond the per-module pass."""
        return ()
