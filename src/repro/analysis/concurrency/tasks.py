"""``async-task-leak``: dropped coroutines and unanchored tasks.

Two silent asyncio failure modes share a shape — a produced awaitable whose
handle nobody keeps:

* **Unawaited coroutine** — calling an ``async def`` (or a coroutine
  factory like ``asyncio.sleep``) as a bare expression statement builds the
  coroutine object and throws it away; the body never runs.  Python warns
  at garbage-collection time, in production, on some other line.
* **Task leak** — ``asyncio.create_task``/``ensure_future`` as a bare
  expression statement starts real work but drops the only handle: the
  task cannot be awaited, cancelled on drain, or have its exception
  retrieved (asyncio may even garbage-collect it mid-flight).

Project coroutines are resolved through the shared call graph (bare names,
``self.meth``, imports, unique-name CHA), so ``self._flush()`` where
``_flush`` is an ``async def`` two modules away is still caught.  A stored
handle is accepted as anchored — whether it later reaches the drain path is
beyond a name-based analysis and documented as such.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.astutil import ImportMap, resolve_call_name
from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule
from repro.analysis.concurrency.callgraph import graph_for

__all__ = ["TaskLeakRule", "ASYNCIO_COROUTINE_CALLS", "TASK_SPAWNERS"]

#: stdlib calls that return an awaitable which must not be dropped.
ASYNCIO_COROUTINE_CALLS = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.shield",
        "asyncio.open_connection",
        "asyncio.start_server",
        "asyncio.to_thread",
    }
)

#: Task-spawning calls whose returned handle must be stored or awaited.
TASK_SPAWNERS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})


@register_rule
class TaskLeakRule:
    """Flag dropped coroutine objects and unanchored task handles."""

    rule_id = "async-task-leak"
    description = (
        "coroutine calls must be awaited (or their task handle stored); "
        "bare create_task/ensure_future drops the only handle"
    )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Flag bare expression statements that drop an awaitable."""
        graph = graph_for(context)
        imports = ImportMap(module.tree)

        def scan(body, scope, cls_name) -> Iterable[Finding]:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from scan(node.body, scope + [node.name], None)
                    continue
                if isinstance(node, ast.ClassDef):
                    yield from scan(node.body, scope + [node.name], node.name)
                    continue
                if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                    yield from self._check_dropped(
                        node.value, module, imports, graph, scope, cls_name
                    )
                # Recurse into compound statements without losing scope.
                for field in ("body", "orelse", "finalbody"):
                    inner = getattr(node, field, None)
                    if inner and not isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        yield from scan(inner, scope, cls_name)
                handlers = getattr(node, "handlers", None)
                if handlers:
                    for handler in handlers:
                        yield from scan(handler.body, scope, cls_name)

        yield from scan(module.tree.body, [], None)

    def _check_dropped(
        self,
        call: ast.Call,
        module: ModuleInfo,
        imports: ImportMap,
        graph,
        scope,
        cls_name,
    ) -> Iterable[Finding]:
        target = resolve_call_name(call, imports)
        if target is not None:
            if target in TASK_SPAWNERS or target.endswith(
                (".create_task", ".ensure_future")
            ):
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{target}() result is dropped: the task cannot be "
                        f"awaited, cancelled on drain, or observed for "
                        f"exceptions — store the handle"
                    ),
                )
                return
            if target in ASYNCIO_COROUTINE_CALLS:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"{target}() builds a coroutine that is never "
                        f"awaited; its body will not run"
                    ),
                )
                return
        callee = graph._resolve_call(call, module, imports, scope, cls_name)
        if callee is not None:
            info = graph.functions.get(callee)
            if info is not None and info.is_async:
                yield Finding(
                    rule=self.rule_id,
                    path=module.relpath,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"call to async def {callee} is never awaited; the "
                        f"coroutine is built and discarded"
                    ),
                )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()
