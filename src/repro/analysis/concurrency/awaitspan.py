"""``async-await-span``: shared-state read-modify-write spanning an await.

An ``await`` is a scheduling point: every other task on the loop may run
between the read and the write.  A read-modify-write of shared service
state (the session registry, the stream account, the engine's books) that
spans one is therefore a lost-update race even in single-threaded asyncio —
the exact class of bug runtime tests only catch when the interleaving
happens to land.

The rule works per ``async def`` body, in source order:

* a **shared chain** is a dotted attribute path (``self.account.capacity``,
  ``engine.registry``) any of whose segments names shared service state
  (:data:`SHARED_STATE_ATTRS`; injectable for tests);
* a finding fires when a shared chain is *read* at one line, *written* at a
  later (or the same) line, and an ``await`` expression sits between the
  two — including ``shared.x += await f()``, where the await is embedded in
  the read-modify-write itself;
* statements inside an ``async with``/``with`` block whose context
  expression names a lock (any segment containing ``lock``) are exempt —
  the lock serialises the span;
* a site with a single-writer argument carries
  ``# lint: allow(async-await-span)`` and a human on the hook.

Purely syntactic, deliberately: no alias tracking (a chain copied into a
local and written back later is invisible), and chains are compared by
spelling, not object identity.  Both limitations are documented in
``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule

__all__ = ["AwaitSpanMutationRule", "SHARED_STATE_ATTRS"]

#: Attribute segments that mark a dotted chain as shared service state.
SHARED_STATE_ATTRS = frozenset(
    {
        "registry",
        "account",
        "gate",
        "hub",
        "stats",
        "limiter",
        "draining",
        "in_flight",
        "capacity",
        "_sessions",
        "_held",
        "_holders",
        "holds",
        "phase",
        "displacement",
    }
)


@dataclass
class _Event:
    """One ordered observation inside an async body."""

    line: int
    kind: str  # "read" | "write" | "await"
    chain: Optional[str] = None
    locked: bool = False
    node: Optional[ast.AST] = None


def _chain_of(node: ast.expr) -> Optional[str]:
    """The dotted spelling of an attribute chain, or ``None``."""
    if isinstance(node, ast.Attribute):
        return dotted_name(node)
    return None


def _mentions_lock(expr: ast.expr) -> bool:
    """Does a with-context expression name a lock?"""
    name = dotted_name(expr)
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
    if name is None:
        return False
    return any("lock" in part.lower() for part in name.split("."))


class _SpanScanner(ast.NodeVisitor):
    """Flatten one async body into ordered read/write/await events."""

    def __init__(self, shared_attrs: frozenset[str]) -> None:
        self.shared_attrs = shared_attrs
        self.events: List[_Event] = []
        self._lock_depth = 0

    def _is_shared(self, chain: str) -> bool:
        return any(part in self.shared_attrs for part in chain.split("."))

    # -- nested definitions own their own spans --------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- the interesting nodes -------------------------------------------
    def visit_Await(self, node: ast.Await) -> None:
        self.events.append(_Event(line=node.lineno, kind="await"))
        self.generic_visit(node)

    def _with(self, node) -> None:
        locked = any(_mentions_lock(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if locked:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self._lock_depth -= 1

    def visit_With(self, node: ast.With) -> None:
        self._with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _chain_of(node)
        if chain is not None and self._is_shared(chain):
            kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
            self.events.append(
                _Event(
                    line=node.lineno,
                    kind=kind,
                    chain=chain,
                    locked=self._lock_depth > 0,
                    node=node,
                )
            )
            return  # the inner chain would double-count
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Evaluation order is value first, then the stores; ast lists the
        # targets first, so visit explicitly to keep events in run order.
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x += v reads then writes x in one statement; order the synthetic
        # read before any await inside v, and the write after.
        chain = _chain_of(node.target)
        shared = chain is not None and self._is_shared(chain)
        if shared:
            self.events.append(
                _Event(
                    line=node.lineno,
                    kind="read",
                    chain=chain,
                    locked=self._lock_depth > 0,
                    node=node,
                )
            )
        self.visit(node.value)
        if shared:
            self.events.append(
                _Event(
                    line=node.lineno,
                    kind="write",
                    chain=chain,
                    locked=self._lock_depth > 0,
                    node=node,
                )
            )


@register_rule
class AwaitSpanMutationRule:
    """Flag read-modify-write of shared state spanning an ``await``."""

    rule_id = "async-await-span"
    description = (
        "no read-modify-write of shared service state (registry/account/"
        "engine books) across an await without a lock or single-writer pragma"
    )

    def __init__(self, shared_attrs: frozenset[str] | None = None) -> None:
        self.shared_attrs = (
            SHARED_STATE_ATTRS if shared_attrs is None else shared_attrs
        )

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Scan every ``async def`` body of ``module`` for spanning RMWs."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            scanner = _SpanScanner(self.shared_attrs)
            for stmt in node.body:
                scanner.visit(stmt)
            yield from self._findings(module, node.name, scanner.events)

    def _findings(
        self, module: ModuleInfo, func_name: str, events: List[_Event]
    ) -> Iterable[Finding]:
        # For each chain: the line of the most recent unlocked read, and
        # whether an await occurred since.  An unlocked write while
        # (read seen) and (await since read) -> finding.
        last_read: dict[str, Tuple[int, int]] = {}  # chain -> (line, index)
        await_indices: List[int] = []
        reported: set[Tuple[str, int]] = set()
        for index, event in enumerate(events):
            if event.kind == "await":
                await_indices.append(index)
            elif event.kind == "read" and not event.locked:
                if event.chain not in last_read:
                    last_read[event.chain] = (event.line, index)
            elif event.kind == "write" and not event.locked:
                seen = last_read.pop(event.chain, None)
                if seen is None:
                    continue
                read_line, read_index = seen
                spanned = any(i > read_index for i in await_indices)
                key = (event.chain, event.line)
                if spanned and key not in reported:
                    reported.add(key)
                    yield Finding(
                        rule=self.rule_id,
                        path=module.relpath,
                        line=event.line,
                        col=event.node.col_offset if event.node is not None else 0,
                        message=(
                            f"{event.chain} is read at line {read_line} and "
                            f"written here in async {func_name} with an await "
                            f"between them; another task can interleave — hold "
                            f"a lock across the span or mark the single writer "
                            f"with a pragma"
                        ),
                    )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """No whole-tree findings for this rule."""
        return ()
