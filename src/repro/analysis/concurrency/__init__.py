"""Whole-project async concurrency analysis for the admission service.

The per-file rules of :mod:`repro.analysis` see one module at a time; the
hazards that dominate risk in the long-running service (:mod:`repro.service`)
are *interprocedural*: a blocking call three frames below an ``async def``
stalls every connection on the event loop, a read-modify-write of shared
session state that spans an ``await`` races against the other tasks the
scheduler interleaves, and the session lifecycle the engine encodes can
silently drift from what the wire protocol declares.  This package closes
that gap with one whole-project pass:

* :mod:`~repro.analysis.concurrency.callgraph` — parses the full tree once
  (through the existing :class:`~repro.analysis.base.LintContext`), builds a
  module-level call graph, and runs an async-reachability fixpoint: which
  sync functions are transitively called from ``async def`` bodies.  Calls
  hopped through ``loop.run_in_executor``/``asyncio.to_thread`` do not
  propagate reachability — that is the sanctioned escape hatch.
* :mod:`~repro.analysis.concurrency.blocking` — ``async-blocking``:
  ``time.sleep``, blocking socket/subprocess/file I/O at any async-reachable
  site, reported with the call chain from the async entry point.
* :mod:`~repro.analysis.concurrency.awaitspan` — ``async-await-span``:
  read-modify-write of shared service state (session registry, stream
  account, engine books) where an ``await`` sits between the read and the
  write with no lock and no single-writer pragma.
* :mod:`~repro.analysis.concurrency.tasks` — ``async-task-leak``: coroutine
  calls whose result is dropped, and ``create_task``/``ensure_future``
  handles that are neither stored nor awaited.
* :mod:`~repro.analysis.concurrency.protocol_state` — ``protocol-state``:
  statically extracts the session lifecycle transitions encoded in
  ``service/engine.py`` + ``service/state.py`` and diffs them, in both
  directions, against the declared
  :data:`repro.service.protocol.PHASE_TRANSITIONS` table.

Every rule rides the existing machinery: the
:func:`~repro.analysis.base.register_rule` registry, ``# lint: allow(...)``
pragmas, the fingerprint baseline, and the ``repro-vod lint`` CLI (including
``--format sarif``).
"""

from __future__ import annotations

from repro.analysis.concurrency.callgraph import (
    FunctionInfo,
    ProjectCallGraph,
)

# Importing the rule modules registers the concurrency rule family.
from repro.analysis.concurrency import awaitspan as _awaitspan  # noqa: F401
from repro.analysis.concurrency import blocking as _blocking  # noqa: F401
from repro.analysis.concurrency import protocol_state as _protocol_state  # noqa: F401
from repro.analysis.concurrency import tasks as _tasks  # noqa: F401

__all__ = ["FunctionInfo", "ProjectCallGraph"]
