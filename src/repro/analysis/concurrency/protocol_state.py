"""``protocol-state``: the engine's lifecycle vs. the declared table.

:mod:`repro.service.protocol` declares the session state machine
(:data:`~repro.service.protocol.PHASE_TRANSITIONS`,
:data:`~repro.service.protocol.INITIAL_PHASE`); the engine and registry
*encode* it as guards plus ``session.phase = SessionPhase.X`` assignments.
This rule extracts the encoded machine and diffs the two in both directions,
exactly as the trace/metric schema cross-checks do for events and metrics:

* an assignment performing a transition the table does not permit is a
  finding at the assignment site;
* a declared transition no site ever performs is a finding at the table
  (dead declarations rot — remove the entry or implement the transition);
* a ``LiveSession`` phase default different from ``INITIAL_PHASE`` is a
  finding.

**How "from" states are inferred.**  A tiny abstract walk runs over each
function body tracking the set of phases a session may be in: ``if
session.phase is SessionPhase.X: <body ending in return/raise>`` removes
``X``; ``is not`` guards narrow to ``{X}``; entering an ``is`` body narrows
to ``{X}``; an assignment re-points the set.  Loops reset to unknown.  A
site whose phase set was never narrowed witnesses an *unknown-from*
transition, which must merely match some declared entry with that target —
enumerating every source there would invent transitions the code never
performs.  The completeness direction accepts an unknown-from witness for
any declared entry with the same target, so the granularity is honest in
both directions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.base import Finding, LintContext, ModuleInfo, register_rule

__all__ = ["ProtocolStateRule", "observed_transitions", "PhaseWitness"]

#: Module declaring the transition table (anchor for completeness findings).
_PROTOCOL_MODULE = "repro.service.protocol"
#: Module whose presence makes the tree a complete witness of transitions.
_WITNESS_MODULE = "repro.service.engine"
#: The enum class encoding phases.
_PHASE_ENUM = "SessionPhase"


@dataclass(frozen=True)
class PhaseWitness:
    """One statically observed phase assignment."""

    relpath: str
    line: int
    col: int
    function: str
    #: Inferred source phases; ``None`` when the walk never narrowed.
    from_phases: Optional[Tuple[str, ...]]
    to_phase: str


def _phase_test(test: ast.expr) -> List[Tuple[str, bool]]:
    """``(member, positive)`` pairs asserted by a guard expression.

    Handles ``x.phase is SessionPhase.X``, ``is not``, ``==``/``!=`` and
    conjunctions; anything else narrows nothing.
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        found: List[Tuple[str, bool]] = []
        for value in test.values:
            found.extend(_phase_test(value))
        return found
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return []
    left = dotted_name(test.left)
    if left is None or not left.endswith(".phase"):
        return []
    comparator = dotted_name(test.comparators[0])
    if comparator is None or not comparator.startswith(f"{_PHASE_ENUM}."):
        return []
    member = comparator.split(".", 1)[1]
    op = test.ops[0]
    if isinstance(op, (ast.Is, ast.Eq)):
        return [(member, True)]
    if isinstance(op, (ast.IsNot, ast.NotEq)):
        return [(member, False)]
    return []


def _terminates(body: List[ast.stmt]) -> bool:
    """Does a branch end control flow (return/raise/continue/break)?"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _phase_assignment(stmt: ast.stmt) -> Optional[Tuple[str, ast.AST]]:
    """``member`` when ``stmt`` is ``<chain>.phase = SessionPhase.X``."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = dotted_name(stmt.targets[0])
    if target is None or not target.endswith(".phase"):
        return None
    value = dotted_name(stmt.value)
    if value is None or not value.startswith(f"{_PHASE_ENUM}."):
        return None
    return value.split(".", 1)[1], stmt


class _PhaseWalker:
    """Sequential walk of one function tracking the possible phase set."""

    def __init__(self, all_members: Set[str], function: str, module: ModuleInfo):
        self.all_members = all_members
        self.function = function
        self.module = module
        self.witnesses: List[PhaseWitness] = []

    def walk(self, body: List[ast.stmt]) -> None:
        self._walk(body, set(self.all_members), narrowed=False)

    def _record(
        self, member: str, stmt: ast.AST, possible: Set[str], narrowed: bool
    ) -> None:
        self.witnesses.append(
            PhaseWitness(
                relpath=self.module.relpath,
                line=stmt.lineno,
                col=stmt.col_offset,
                function=self.function,
                from_phases=tuple(sorted(possible)) if narrowed else None,
                to_phase=member,
            )
        )

    def _walk(
        self, body: List[ast.stmt], possible: Set[str], narrowed: bool
    ) -> Tuple[Set[str], bool]:
        """Returns the (possible, narrowed) state at the end of ``body``."""
        for stmt in body:
            assignment = _phase_assignment(stmt)
            if assignment is not None:
                member, node = assignment
                self._record(member, node, possible, narrowed)
                possible, narrowed = {member}, True
                continue
            if isinstance(stmt, ast.If):
                tests = _phase_test(stmt.test)
                body_possible, body_narrowed = set(possible), narrowed
                else_possible, else_narrowed = set(possible), narrowed
                for member, positive in tests:
                    if member not in self.all_members:
                        continue
                    if positive:
                        body_possible, body_narrowed = {member}, True
                        # A failed `is` only removes one member when it was
                        # the sole test; conjunction failure tells us less.
                        if len(tests) == 1:
                            else_possible = else_possible - {member}
                            else_narrowed = True
                    else:
                        body_possible = body_possible - {member}
                        body_narrowed = True
                        if len(tests) == 1:
                            else_possible, else_narrowed = {member}, True
                body_exit = self._walk(stmt.body, body_possible, body_narrowed)
                else_exit = self._walk(stmt.orelse, else_possible, else_narrowed)
                if _terminates(stmt.body) and not _terminates(stmt.orelse):
                    possible, narrowed = else_exit
                elif _terminates(stmt.orelse) and not _terminates(stmt.body):
                    possible, narrowed = body_exit
                elif _terminates(stmt.body) and _terminates(stmt.orelse):
                    # Both branches leave; nothing follows in practice.
                    possible, narrowed = set(self.all_members), False
                else:
                    possible = body_exit[0] | else_exit[0]
                    narrowed = body_exit[1] and else_exit[1]
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # Loop bodies may re-enter with a different phase: walk them
                # with unknown state and forget narrowing afterwards.
                self._walk(stmt.body, set(self.all_members), False)
                self._walk(stmt.orelse, set(self.all_members), False)
                possible, narrowed = set(self.all_members), False
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                possible, narrowed = self._walk(stmt.body, possible, narrowed)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, set(possible), narrowed)
                for handler in stmt.handlers:
                    self._walk(handler.body, set(self.all_members), False)
                self._walk(stmt.orelse, set(self.all_members), False)
                self._walk(stmt.finalbody, set(self.all_members), False)
                possible, narrowed = set(self.all_members), False
        return possible, narrowed


def _enum_value_map(context: LintContext) -> Dict[str, str]:
    """``SessionPhase`` member -> string value, from the scanned tree.

    Falls back to ``member.lower()`` when the enum class is not in the tree
    (rule-fixture directories).
    """
    for module in context.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == _PHASE_ENUM:
                values: Dict[str, str] = {}
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)
                    ):
                        values[stmt.targets[0].id] = stmt.value.value
                if values:
                    return values
    return {}


def observed_transitions(
    context: LintContext, phases: Tuple[str, ...] | None = None
) -> List[PhaseWitness]:
    """Every phase-assignment witness in the tree, in deterministic order.

    Exposed for the self-check test, which pins the live engine's exact
    transition set so lifecycle edits are deliberate.
    """
    if phases is None:
        from repro.service.protocol import SESSION_PHASES

        phases = SESSION_PHASES
    value_map = _enum_value_map(context)

    def to_value(member: str) -> str:
        return value_map.get(member, member.lower())

    witnesses: List[PhaseWitness] = []
    member_names = {member for member in value_map} or {
        phase.upper() for phase in phases
    }
    for module in context.modules:

        def walk_defs(body, scope: List[str]) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walker = _PhaseWalker(member_names, node.name, module)
                    walker.walk(node.body)
                    witnesses.extend(walker.witnesses)
                    walk_defs(node.body, scope + [node.name])
                elif isinstance(node, ast.ClassDef):
                    walk_defs(node.body, scope + [node.name])

        walk_defs(module.tree.body, [])
    normalised = [
        PhaseWitness(
            relpath=w.relpath,
            line=w.line,
            col=w.col,
            function=w.function,
            from_phases=(
                tuple(sorted(to_value(m) for m in w.from_phases))
                if w.from_phases is not None
                else None
            ),
            to_phase=to_value(w.to_phase),
        )
        for w in witnesses
    ]
    normalised.sort(key=lambda w: (w.relpath, w.line, w.col))
    return normalised


@register_rule
class ProtocolStateRule:
    """Diff the encoded session lifecycle against the declared table."""

    rule_id = "protocol-state"
    description = (
        "session phase assignments in the service layer must match the "
        "declared PHASE_TRANSITIONS table in repro.service.protocol, and "
        "every declared transition must be performed somewhere"
    )

    def __init__(
        self,
        transitions: frozenset[Tuple[str, str]] | None = None,
        phases: Tuple[str, ...] | None = None,
        initial: str | None = None,
    ) -> None:
        if transitions is None or phases is None or initial is None:
            from repro.service.protocol import (
                INITIAL_PHASE,
                PHASE_TRANSITIONS,
                SESSION_PHASES,
            )

            transitions = PHASE_TRANSITIONS if transitions is None else transitions
            phases = SESSION_PHASES if phases is None else phases
            initial = INITIAL_PHASE if initial is None else initial
        self.transitions = transitions
        self.phases = phases
        self.initial = initial

    def check(self, module: ModuleInfo, context: LintContext) -> Iterable[Finding]:
        """Per-module: the ``LiveSession`` default must match INITIAL_PHASE."""
        value_map = _enum_value_map(context)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name != "LiveSession":
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "phase"
                    and stmt.value is not None
                ):
                    value = dotted_name(stmt.value)
                    if value is None or not value.startswith(f"{_PHASE_ENUM}."):
                        continue
                    member = value.split(".", 1)[1]
                    declared = value_map.get(member, member.lower())
                    if declared != self.initial:
                        yield Finding(
                            rule=self.rule_id,
                            path=module.relpath,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"LiveSession starts in phase {declared!r} but "
                                f"the protocol declares INITIAL_PHASE "
                                f"{self.initial!r}"
                            ),
                        )

    def finalize(self, context: LintContext) -> Iterable[Finding]:
        """Whole-tree: diff observed witnesses against the declared table."""
        witnesses = observed_transitions(context, phases=self.phases)
        declared_targets = {to for _, to in self.transitions}
        for witness in witnesses:
            if witness.to_phase not in declared_targets:
                yield Finding(
                    rule=self.rule_id,
                    path=witness.relpath,
                    line=witness.line,
                    col=witness.col,
                    message=(
                        f"{witness.function} moves a session to phase "
                        f"{witness.to_phase!r}, which no declared transition "
                        f"targets (PHASE_TRANSITIONS in repro.service.protocol)"
                    ),
                )
                continue
            if witness.from_phases is None:
                continue  # unknown-from: target membership checked above
            for source in witness.from_phases:
                if source == witness.to_phase:
                    # Re-asserting the current phase is not a transition.
                    continue
                if (source, witness.to_phase) not in self.transitions:
                    yield Finding(
                        rule=self.rule_id,
                        path=witness.relpath,
                        line=witness.line,
                        col=witness.col,
                        message=(
                            f"{witness.function} performs undeclared "
                            f"transition {source!r} -> {witness.to_phase!r}; "
                            f"declare it in PHASE_TRANSITIONS or fix the guard"
                        ),
                    )
        # Completeness: only when the engine module is part of the tree.
        anchor = context.module_named(_PROTOCOL_MODULE)
        if anchor is None or context.module_named(_WITNESS_MODULE) is None:
            return
        exact = set()
        unknown_targets = set()
        for witness in witnesses:
            if witness.from_phases is None:
                unknown_targets.add(witness.to_phase)
            else:
                for source in witness.from_phases:
                    exact.add((source, witness.to_phase))
        for source, target in sorted(self.transitions):
            if (source, target) in exact or target in unknown_targets:
                continue
            yield Finding(
                rule=self.rule_id,
                path=anchor.relpath,
                line=1,
                col=0,
                message=(
                    f"PHASE_TRANSITIONS declares {source!r} -> {target!r} but "
                    f"no engine/state site performs it; remove the entry or "
                    f"implement the transition"
                ),
            )
