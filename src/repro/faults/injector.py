"""Drives a :class:`~repro.faults.plan.FaultPlan` from the sim engine.

The injector is one ordinary simulation process: it sleeps until each
scheduled fault's time, applies the raw effect to the targeted subsystem
(shrink the stream pool, revoke grants, squeeze the buffer pool, silence
telemetry) and, for transient faults, schedules the recovery edge.  All of
this happens on the sim clock, so a plan's effects are byte-identical across
runs and worker counts.

Graceful degradation is *not* the injector's job: when a
:class:`~repro.vod.degradation.DegradationManager` is attached the injector
notifies it after each raw effect and after each recovery, and the manager
decides what to shed.  With no manager attached the faults simply land — the
no-policy baseline the chaos experiment compares against.
"""

from __future__ import annotations

import math
from typing import Generator, Sequence

from repro.exceptions import FaultPlanError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault plan's events to live simulation targets.

    Targets are duck-typed and optional: ``streams`` (a
    ``repro.vod.streams.StreamPool``), ``buffers`` (a
    ``repro.vod.buffer.BufferPool``), ``services`` (the popular movies'
    ``MovieService`` objects, for partition eviction), ``telemetry``
    (anything with ``set_outage(bool)``) and ``manager`` (a
    ``DegradationManager``).  A fault whose target is absent is recorded but
    has no effect.
    """

    def __init__(
        self,
        env,
        plan: FaultPlan,
        streams=None,
        buffers=None,
        services: Sequence = (),
        telemetry=None,
        manager=None,
        metrics=None,
        tracer=None,
    ) -> None:
        self._env = env
        self._plan = plan
        self._streams = streams
        self._buffers = buffers
        self._services = tuple(services)
        self._telemetry = telemetry
        self._manager = manager
        self._metrics = metrics
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._started = False
        self._nominal_streams: int | None = None
        self._nominal_buffer_mb: float | None = None
        self._disk_factors: list[float] = []
        self._buffer_losses: list[float] = []
        self._outage_depth = 0
        self._transients_active = 0
        self.faults_applied = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Record nominal capacities and launch the injection process."""
        if self._started:
            return
        self._started = True
        if self._streams is not None:
            self._nominal_streams = self._streams.capacity
        if self._buffers is not None:
            self._nominal_buffer_mb = self._buffers.capacity_megabytes
        self._env.process(self._run(), name="fault-injector")

    def _run(self) -> Generator:
        for event in self._plan.events:
            if event.time > self._env.now:
                yield self._env.timeout(event.time - self._env.now)
            self._apply(event)

    # ------------------------------------------------------------------
    # Application.
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        self.faults_applied += 1
        self._record(event.kind, recovered=False, magnitude=event.magnitude)
        if event.kind is FaultKind.DISK_DEGRADE:
            self._apply_disk_degrade(event)
        elif event.kind is FaultKind.STREAM_REVOKE:
            self._apply_stream_revoke(event)
        elif event.kind is FaultKind.BUFFER_PRESSURE:
            self._apply_buffer_pressure(event)
        elif event.kind is FaultKind.TELEMETRY_OUTAGE:
            self._apply_telemetry_outage(event)
        else:  # pragma: no cover - enum is closed
            raise FaultPlanError(f"unhandled fault kind {event.kind!r}")

    def _record(self, kind: FaultKind, recovered: bool, magnitude: float) -> None:
        if self._metrics is not None:
            name = "faults.recovered" if recovered else "faults.injected"
            self._metrics.counter(name).increment()
            if not recovered:
                self._metrics.counter(f"faults.injected.{kind.value}").increment()
        if self._tracer is not None:
            self._tracer.emit(
                "fault_injected",
                self._env.now,
                kind=kind.value,
                magnitude=magnitude,
                recovered=recovered,
            )

    # --- disk-bandwidth degradation ------------------------------------
    def _apply_disk_degrade(self, event: FaultEvent) -> None:
        if self._streams is None:
            return
        self._disk_factors.append(event.magnitude)
        self._resize_streams()
        self._notify_pressure()
        if event.duration is not None:
            self._transients_active += 1
            self._env.process(
                self._recover_disk(event), name="fault-recover:disk"
            )

    def _recover_disk(self, event: FaultEvent) -> Generator:
        yield self._env.timeout(event.duration)
        self._disk_factors.remove(event.magnitude)
        self._resize_streams()
        self._record(event.kind, recovered=True, magnitude=event.magnitude)
        self._transient_done()

    def _resize_streams(self) -> None:
        factor = min(self._disk_factors, default=1.0)
        self._streams.resize(int(math.floor(self._nominal_streams * factor)))

    # --- stream revocation ----------------------------------------------
    def _apply_stream_revoke(self, event: FaultEvent) -> None:
        if self._streams is None:
            return
        victims = self._streams.revoke(int(event.magnitude))
        # A revoked playback grant kills its partition immediately.
        for service in self._services:
            service.reap_revoked()
        if self._manager is not None:
            self._manager.on_revocation(victims)

    # --- buffer pressure --------------------------------------------------
    def _apply_buffer_pressure(self, event: FaultEvent) -> None:
        if self._buffers is None:
            return
        self._buffer_losses.append(event.magnitude)
        self._resize_buffers()
        live = sum(len(s.live_streams) for s in self._services)
        evict = int(math.ceil(event.magnitude * live))
        if evict:
            if self._manager is not None:
                self._manager.shed_partitions(evict)
            else:
                self._evict_newest(evict)
        if event.duration is not None:
            self._transients_active += 1
            self._env.process(
                self._recover_buffers(event), name="fault-recover:buffer"
            )

    def _recover_buffers(self, event: FaultEvent) -> Generator:
        yield self._env.timeout(event.duration)
        self._buffer_losses.remove(event.magnitude)
        self._resize_buffers()
        self._record(event.kind, recovered=True, magnitude=event.magnitude)
        self._transient_done()

    def _resize_buffers(self) -> None:
        remaining = 1.0
        for loss in self._buffer_losses:
            remaining *= 1.0 - loss
        self._buffers.resize(self._nominal_buffer_mb * remaining)

    def _evict_newest(self, count: int) -> None:
        """No-policy eviction: the youngest partitions go first (the worst
        victims — they serve the most future viewers), deterministically."""
        candidates = [
            (stream, service)
            for service in self._services
            for stream in service.live_streams
        ]
        candidates.sort(
            key=lambda pair: (-pair[0].start_time, pair[1].movie.movie_id)
        )
        for stream, service in candidates[:count]:
            service.collapse(stream)

    # --- telemetry outage -------------------------------------------------
    def _apply_telemetry_outage(self, event: FaultEvent) -> None:
        if self._telemetry is None:
            return
        self._outage_depth += 1
        self._telemetry.set_outage(True)
        self._transients_active += 1
        self._env.process(
            self._recover_telemetry(event), name="fault-recover:telemetry"
        )

    def _recover_telemetry(self, event: FaultEvent) -> Generator:
        yield self._env.timeout(event.magnitude)
        self._outage_depth -= 1
        if self._outage_depth == 0:
            self._telemetry.set_outage(False)
        self._record(event.kind, recovered=True, magnitude=event.magnitude)
        self._transient_done()

    # --- shared recovery bookkeeping -------------------------------------
    def _notify_pressure(self) -> None:
        if self._manager is not None:
            self._manager.on_pressure()

    def _transient_done(self) -> None:
        self._transients_active -= 1
        if self._transients_active == 0 and self._manager is not None:
            self._manager.on_recovery()
