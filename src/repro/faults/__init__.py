"""Deterministic fault injection for the VOD server and its control plane.

The paper pre-allocates buffer and I/O streams as if the hardware never
fails; this subpackage injects the failures — disk-bandwidth degradation,
stream-grant revocation, buffer pressure, telemetry outages — as *scheduled
simulation events* derived from a seeded, JSON-serialisable
:class:`~repro.faults.plan.FaultPlan`.  Because faults are ordinary events
on the sim clock, the same plan and seed reproduce byte-identical traces for
any worker count, which is what lets CI diff a degraded run against itself.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import PLAN_VERSION, FaultEvent, FaultKind, FaultPlan

__all__ = ["PLAN_VERSION", "FaultKind", "FaultEvent", "FaultPlan", "FaultInjector"]
