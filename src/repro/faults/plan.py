"""Fault plans: what breaks, when, by how much, and for how long.

A :class:`FaultPlan` is a schema-versioned, JSON-serialisable schedule of
:class:`FaultEvent`\\ s on the simulation clock.  Plans come from two places:
hand-written JSON files (``repro-vod faults run plan.json``) and
:meth:`FaultPlan.generate`, which draws a random plan from the repo's
standard ``SeedSequence`` lineage so a ``(seed, horizon, intensity)`` triple
always produces the same plan on any machine or worker count.

Magnitude semantics are kind-specific:

========================  =====================================================
kind                      magnitude
========================  =====================================================
``disk_degrade``          fraction of nominal stream capacity *remaining*
                          (0, 1]; ``duration`` minutes until recovery
                          (``null`` = permanent)
``stream_revoke``         number of live grants to revoke (integer >= 1),
                          instantaneous
``buffer_pressure``       fraction of nominal buffer capacity *lost* (0, 1];
                          ``duration`` as for ``disk_degrade``
``telemetry_outage``      outage length in simulation minutes
========================  =====================================================
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.exceptions import FaultPlanError
from repro.sim.rng import RandomStreams

__all__ = ["PLAN_VERSION", "FaultKind", "FaultEvent", "FaultPlan"]

#: Version of the plan-file schema (independent of the trace schema).
PLAN_VERSION = 1


class FaultKind(enum.Enum):
    """What breaks."""

    DISK_DEGRADE = "disk_degrade"
    STREAM_REVOKE = "stream_revoke"
    BUFFER_PRESSURE = "buffer_pressure"
    TELEMETRY_OUTAGE = "telemetry_outage"


#: Kinds whose effect can be transient (``duration`` set) or permanent.
_TRANSIENT_KINDS = frozenset({FaultKind.DISK_DEGRADE, FaultKind.BUFFER_PRESSURE})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: injection time, kind, magnitude, recovery."""

    time: float
    kind: FaultKind
    magnitude: float
    duration: float | None = None

    def __post_init__(self) -> None:
        if not (math.isfinite(self.time) and self.time >= 0.0):
            raise FaultPlanError(f"fault time must be finite and >= 0, got {self.time}")
        if not (math.isfinite(self.magnitude) and self.magnitude > 0.0):
            raise FaultPlanError(
                f"{self.kind.value}: magnitude must be finite and > 0, "
                f"got {self.magnitude}"
            )
        if self.kind in _TRANSIENT_KINDS:
            if not 0.0 < self.magnitude <= 1.0:
                raise FaultPlanError(
                    f"{self.kind.value}: magnitude is a fraction in (0, 1], "
                    f"got {self.magnitude}"
                )
            if self.duration is not None and not (
                math.isfinite(self.duration) and self.duration > 0.0
            ):
                raise FaultPlanError(
                    f"{self.kind.value}: duration must be positive or null, "
                    f"got {self.duration}"
                )
        else:
            if self.duration is not None:
                raise FaultPlanError(
                    f"{self.kind.value}: duration is not meaningful "
                    "(revocations are instantaneous; an outage's length is its "
                    "magnitude)"
                )
            if self.kind is FaultKind.STREAM_REVOKE and self.magnitude != int(
                self.magnitude
            ):
                raise FaultPlanError(
                    f"stream_revoke: magnitude is a whole number of grants, "
                    f"got {self.magnitude}"
                )

    def to_obj(self) -> dict:
        """The event as a JSON-ready dict."""
        obj: dict = {
            "time": self.time,
            "kind": self.kind.value,
            "magnitude": self.magnitude,
        }
        if self.duration is not None:
            obj["duration"] = self.duration
        return obj

    @classmethod
    def from_obj(cls, obj: Mapping) -> "FaultEvent":
        """Decode one event dict; raises :class:`FaultPlanError` on bad shape."""
        if not isinstance(obj, Mapping):
            raise FaultPlanError(f"fault event must be an object, got {type(obj).__name__}")
        unknown = set(obj) - {"time", "kind", "magnitude", "duration"}
        if unknown:
            raise FaultPlanError(f"fault event has unknown field(s) {sorted(unknown)}")
        for field_name in ("time", "kind", "magnitude"):
            if field_name not in obj:
                raise FaultPlanError(f"fault event missing field {field_name!r}")
        try:
            kind = FaultKind(obj["kind"])
        except ValueError:
            raise FaultPlanError(
                f"unknown fault kind {obj['kind']!r} "
                f"(known: {[k.value for k in FaultKind]})"
            ) from None
        for field_name in ("time", "magnitude", "duration"):
            value = obj.get(field_name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise FaultPlanError(
                    f"fault event field {field_name!r} must be a number, got {value!r}"
                )
        return cls(
            time=float(obj["time"]),
            kind=kind,
            magnitude=float(obj["magnitude"]),
            duration=None if obj.get("duration") is None else float(obj["duration"]),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A versioned, time-sorted schedule of faults plus its defining seed."""

    seed: int
    events: tuple[FaultEvent, ...]
    version: int = PLAN_VERSION

    def __post_init__(self) -> None:
        if self.version != PLAN_VERSION:
            raise FaultPlanError(
                f"unsupported fault-plan version {self.version!r} "
                f"(this reader speaks {PLAN_VERSION})"
            )
        # Stable time sort so injection order is part of the plan's identity.
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.time))
        )

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_obj(self) -> dict:
        """The plan as a JSON-ready dict."""
        return {
            "version": self.version,
            "seed": self.seed,
            "events": [event.to_obj() for event in self.events],
        }

    @classmethod
    def from_obj(cls, obj: Mapping) -> "FaultPlan":
        """Decode a plan dict; raises :class:`FaultPlanError` on bad shape."""
        if not isinstance(obj, Mapping):
            raise FaultPlanError(f"fault plan must be an object, got {type(obj).__name__}")
        unknown = set(obj) - {"version", "seed", "events"}
        if unknown:
            raise FaultPlanError(f"fault plan has unknown field(s) {sorted(unknown)}")
        for field_name in ("version", "seed", "events"):
            if field_name not in obj:
                raise FaultPlanError(f"fault plan missing field {field_name!r}")
        if isinstance(obj["seed"], bool) or not isinstance(obj["seed"], int):
            raise FaultPlanError(f"fault plan seed must be an integer, got {obj['seed']!r}")
        if not isinstance(obj["events"], Sequence) or isinstance(obj["events"], str):
            raise FaultPlanError("fault plan events must be an array")
        return cls(
            seed=obj["seed"],
            events=tuple(FaultEvent.from_obj(e) for e in obj["events"]),
            version=obj["version"],
        )

    def dump(self, path: str | Path) -> None:
        """Write the plan to a JSON file."""
        Path(path).write_text(
            json.dumps(self.to_obj(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan from a JSON file; raises :class:`FaultPlanError`."""
        try:
            obj = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan {path} is not valid JSON: {exc.msg}") from exc
        return cls.from_obj(obj)

    # ------------------------------------------------------------------
    # Generation.
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float,
        intensity: float,
        kinds: Sequence[FaultKind] = tuple(FaultKind),
    ) -> "FaultPlan":
        """Draw a random plan: ~``intensity`` faults per hour over ``horizon``.

        Draws come from the ``"fault-plan"`` named substream of the repo's
        ``SeedSequence`` lineage, so the plan is a pure function of
        ``(seed, horizon, intensity, kinds)`` — independent of every other
        stochastic component and of worker count.
        """
        if horizon <= 0.0:
            raise FaultPlanError(f"horizon must be positive, got {horizon}")
        if intensity <= 0.0:
            raise FaultPlanError(f"intensity must be positive, got {intensity}")
        if not kinds:
            raise FaultPlanError("need at least one fault kind to draw from")
        rng = RandomStreams(seed).stream("fault-plan")
        count = max(1, int(rng.poisson(intensity * horizon / 60.0)))
        times = sorted(float(t) for t in rng.uniform(0.0, horizon, size=count))
        events = []
        for time in times:
            kind = kinds[int(rng.integers(0, len(kinds)))]
            if kind is FaultKind.DISK_DEGRADE:
                event = FaultEvent(
                    time=time,
                    kind=kind,
                    magnitude=float(rng.uniform(0.4, 0.9)),
                    duration=float(rng.uniform(0.05, 0.25) * horizon),
                )
            elif kind is FaultKind.STREAM_REVOKE:
                event = FaultEvent(
                    time=time, kind=kind, magnitude=float(1 + int(rng.poisson(2.0)))
                )
            elif kind is FaultKind.BUFFER_PRESSURE:
                event = FaultEvent(
                    time=time,
                    kind=kind,
                    magnitude=float(rng.uniform(0.2, 0.6)),
                    duration=float(rng.uniform(0.05, 0.25) * horizon),
                )
            else:
                event = FaultEvent(
                    time=time, kind=kind, magnitude=float(rng.uniform(5.0, 30.0))
                )
            events.append(event)
        return cls(seed=seed, events=tuple(events))
