"""Numerics backend selection for the batched model hot path.

The hit model ships two implementations of every batched kernel:

* ``"stdlib"`` (the default) — pure-Python list-of-floats kernels: binary
  search + linear interpolation via :mod:`bisect`, distribution CDFs via the
  same ``math``-library calls the scalar code makes.  No dependency beyond
  the standard library is exercised on the hot path.
* ``"numpy"`` — the same kernels expressed as NumPy array operations,
  including a masked vectorised incomplete-gamma evaluator.  Opt in with
  ``REPRO_BACKEND=numpy`` or the ``--backend numpy`` CLI flag.
* ``"scalar"`` — forces the original point-by-point evaluation path.  This
  is the oracle: both batched backends are required (and CI-enforced) to
  produce byte-identical results to it.

Backend choice is *deterministic state*, not behaviour: every backend
computes bit-for-bit identical floating-point results, in the same order,
for the same inputs.  The equivalence suite in
``tests/core/test_batch_equivalence.py`` pins that contract.

The active backend is process-global.  It is read once from the
``REPRO_BACKEND`` environment variable at import (so worker processes forked
by :mod:`repro.parallel` inherit the driver's choice) and can be changed
explicitly with :func:`set_backend` or temporarily with :func:`use_backend`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.exceptions import ConfigurationError

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "active_backend",
    "set_backend",
    "use_backend",
    "batching_enabled",
]

#: Recognised backend names, in documentation order.
BACKENDS = ("stdlib", "numpy", "scalar")

#: The backend used when ``REPRO_BACKEND`` is unset.
DEFAULT_BACKEND = "stdlib"


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown numerics backend {name!r}; expected one of {BACKENDS}"
        )
    return name


_active = _validate(os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND))


def active_backend() -> str:
    """The currently selected backend name."""
    return _active


def set_backend(name: str) -> str:
    """Select a backend process-wide; returns the previous backend."""
    global _active
    previous = _active
    _active = _validate(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily select a backend (scoped; restores the previous one)."""
    previous = set_backend(name)
    try:
        yield _active
    finally:
        set_backend(previous)


def batching_enabled() -> bool:
    """True when the active backend routes evaluation through batch kernels."""
    return _active != "scalar"
