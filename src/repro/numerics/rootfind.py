"""Bracketed scalar root finding.

The sizing module solves the paper's constraint system (C1)/(C2) — find the
largest stream count ``n`` whose induced buffer ``B = l − n·w`` still meets the
hit-probability target — by searching for sign changes of
``P(hit)(n) − P*``.  These helpers provide bisection (robust, guaranteed) and
Brent's method (fast) plus a bracket scanner.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.exceptions import NumericsError

__all__ = ["bisect", "brent", "find_bracket"]


def bisect(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Find a root of ``func`` in ``[lo, hi]`` by bisection.

    Requires ``func(lo)`` and ``func(hi)`` to have opposite signs (a zero at
    either endpoint is returned immediately).
    """
    flo, fhi = float(func(lo)), float(func(hi))
    if flo == 0.0:
        return lo
    if fhi == 0.0:
        return hi
    if flo * fhi > 0.0:
        raise NumericsError(
            f"bisect requires a sign change: f({lo})={flo}, f({hi})={fhi}"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = float(func(mid))
        if fmid == 0.0 or (hi - lo) / 2.0 < tol:
            return mid
        if flo * fmid < 0.0:
            hi = mid
        else:
            lo, flo = mid, fmid
    return 0.5 * (lo + hi)


def brent(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 100,
) -> float:
    """Brent's method: inverse-quadratic/secant with bisection fallback.

    Same bracketing contract as :func:`bisect` but converges superlinearly on
    smooth functions.
    """
    a, b = float(lo), float(hi)
    fa, fb = float(func(a)), float(func(b))
    if fa == 0.0:
        return a
    if fb == 0.0:
        return b
    if fa * fb > 0.0:
        raise NumericsError(f"brent requires a sign change: f({a})={fa}, f({b})={fb}")
    if abs(fa) < abs(fb):
        a, b, fa, fb = b, a, fb, fa
    c, fc = a, fa
    d = e = b - a
    for _ in range(max_iter):
        if fb * fc > 0.0:
            c, fc = a, fa
            d = e = b - a
        if abs(fc) < abs(fb):
            a, b, c = b, c, b
            fa, fb, fc = fb, fc, fb
        tol1 = 2.0 * math.ulp(abs(b)) + 0.5 * tol
        xm = 0.5 * (c - b)
        if abs(xm) <= tol1 or fb == 0.0:
            return b
        if abs(e) >= tol1 and abs(fa) > abs(fb):
            s = fb / fa
            if a == c:
                p = 2.0 * xm * s
                q = 1.0 - s
            else:
                q = fa / fc
                r = fb / fc
                p = s * (2.0 * xm * q * (q - r) - (b - a) * (r - 1.0))
                q = (q - 1.0) * (r - 1.0) * (s - 1.0)
            if p > 0.0:
                q = -q
            p = abs(p)
            if 2.0 * p < min(3.0 * xm * q - abs(tol1 * q), abs(e * q)):
                e, d = d, p / q
            else:
                d = e = xm
        else:
            d = e = xm
        a, fa = b, fb
        b += d if abs(d) > tol1 else math.copysign(tol1, xm)
        fb = float(func(b))
    return b


def find_bracket(
    func: Callable[[float], float],
    lo: float,
    hi: float,
    num_probes: int = 64,
) -> tuple[float, float] | None:
    """Scan ``[lo, hi]`` for the first subinterval where ``func`` changes sign.

    Returns the bracketing pair or ``None`` if no sign change is observed at
    the probe resolution.  Probes with non-finite values are skipped.
    """
    if num_probes < 2:
        raise NumericsError(f"find_bracket needs >= 2 probes, got {num_probes}")
    step = (hi - lo) / (num_probes - 1)
    prev_x = lo
    prev_f = float(func(lo))
    for i in range(1, num_probes):
        x = lo + i * step
        f = float(func(x))
        if not math.isfinite(f):
            prev_x, prev_f = x, f
            continue
        if math.isfinite(prev_f):
            if prev_f == 0.0:
                return (prev_x, prev_x)
            if prev_f * f <= 0.0:
                return (prev_x, x)
        prev_x, prev_f = x, f
    return None
