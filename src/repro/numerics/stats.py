"""Summary statistics and confidence intervals for simulation output.

Section 4 of the paper validates the analytical model against simulation; a
credible reproduction must therefore report not just point estimates of the
empirical hit probability but uncertainty around them.  This module provides
a numerically-stable online accumulator (Welford), batch summaries, and
normal-approximation confidence intervals (simulation runs collect thousands
of Bernoulli hit/miss observations, comfortably inside CLT territory).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import InsufficientDataError, NumericsError

__all__ = [
    "RunningStat",
    "SummaryStatistics",
    "confidence_interval",
    "summarize",
    "normal_quantile",
]


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF via the Acklam rational approximation.

    Accurate to ~1e-9 over ``(0, 1)``; sufficient for confidence intervals.
    Implemented locally so the core library needs only NumPy.
    """
    if not 0.0 < p < 1.0:
        raise NumericsError(f"normal quantile requires p in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
        )
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


class RunningStat:
    """Welford online accumulator for mean and variance.

    Numerically stable for long simulation runs; supports merging, which the
    hit simulator uses to combine per-replication statistics.
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for v in values:
            self.push(v)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new accumulator equivalent to seeing both streams."""
        merged = RunningStat()
        if self._count == 0:
            merged._copy_from(other)
            return merged
        if other._count == 0:
            merged._copy_from(self)
            return merged
        total = self._count + other._count
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / total
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def _copy_from(self, other: "RunningStat") -> None:
        self._count = other._count
        self._mean = other._mean
        self._m2 = other._m2
        self._min = other._min
        self._max = other._max

    @property
    def count(self) -> int:
        """Number of observations seen."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (raises on an empty accumulator)."""
        if self._count == 0:
            raise InsufficientDataError("mean of empty RunningStat")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than 2 observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation seen."""
        if self._count == 0:
            raise InsufficientDataError("minimum of empty RunningStat")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation seen."""
        if self._count == 0:
            raise InsufficientDataError("maximum of empty RunningStat")
        return self._max

    def summary(self) -> "SummaryStatistics":
        """Freeze the accumulator into an immutable summary."""
        return SummaryStatistics(
            count=self.count,
            mean=self.mean,
            stddev=self.stddev,
            minimum=self.minimum,
            maximum=self.maximum,
        )


@dataclass(frozen=True)
class SummaryStatistics:
    """Immutable summary of a sample: count, mean, stddev, min, max."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float

    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            raise InsufficientDataError("standard error of an empty sample")
        return self.stddev / math.sqrt(self.count)

    def ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        half = confidence_halfwidth(self.stddev, self.count, confidence)
        return (self.mean - half, self.mean + half)


def confidence_halfwidth(stddev: float, count: int, confidence: float = 0.95) -> float:
    """Half-width of a normal-approximation CI for a sample mean."""
    if count < 1:
        raise InsufficientDataError("confidence interval requires at least one observation")
    if count == 1:
        return math.inf
    z = normal_quantile(0.5 + confidence / 2.0)
    return z * stddev / math.sqrt(count)


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for the mean of ``values``."""
    stat = RunningStat()
    stat.extend(values)
    return stat.summary().ci(confidence)


def summarize(values: Iterable[float]) -> SummaryStatistics:
    """One-shot summary of an iterable of observations."""
    stat = RunningStat()
    stat.extend(values)
    return stat.summary()
