"""Closed-interval union algebra.

The model of Section 3 reduces every hit event to a statement of the form
"the operation's duration ``x`` falls in one of these intervals".  For fast
forward the intervals are the catch-up windows of successive partitions ahead;
for rewind they are the catch-up windows of partitions behind; for pause they
are the periodic window-overlap episodes.  This module provides the small
amount of interval algebra needed to build those sets robustly: normalisation
(sorting/merging overlaps), intersection with a clipping window, measure, and
membership — plus measure-under-a-CDF, which is the quantity that actually
enters the probability computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

__all__ = ["Interval", "IntervalUnion", "measure_under_many"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the real line.

    Degenerate intervals (``lo == hi``) are allowed and have measure zero;
    construction with ``lo > hi`` is normalised to an empty marker by callers
    via :meth:`is_empty` — the constructor itself does not reorder, so that
    accidental bound swaps surface in tests.
    """

    lo: float
    hi: float

    @property
    def is_empty(self) -> bool:
        """True when the interval contains no points (``lo > hi``)."""
        return self.lo > self.hi

    @property
    def length(self) -> float:
        """Lebesgue measure of the interval (0 for empty/degenerate)."""
        return max(0.0, self.hi - self.lo)

    def contains(self, x: float) -> bool:
        """Closed-interval membership."""
        return self.lo <= x <= self.hi

    def clip(self, lo: float, hi: float) -> "Interval":
        """Intersect with ``[lo, hi]``; may produce an empty interval."""
        return Interval(max(self.lo, lo), min(self.hi, hi))

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return self.lo <= other.hi and other.lo <= self.hi


class IntervalUnion:
    """A finite union of closed intervals, kept sorted and disjoint.

    Construction normalises the input: empty intervals are dropped and
    overlapping or touching intervals are merged.  Instances are immutable
    from the caller's perspective; all operations return new unions.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        live = sorted(iv for iv in intervals if not iv.is_empty)
        if not live:
            return ()
        merged: list[Interval] = [live[0]]
        for iv in live[1:]:
            last = merged[-1]
            if iv.lo <= last.hi:  # overlap or touch: closed intervals merge
                if iv.hi > last.hi:
                    merged[-1] = Interval(last.lo, iv.hi)
            else:
                merged.append(iv)
        return tuple(merged)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "IntervalUnion":
        """Build a union from ``(lo, hi)`` tuples."""
        return cls(Interval(lo, hi) for lo, hi in pairs)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The disjoint, sorted component intervals."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        """True when the union contains no intervals."""
        return not self._intervals

    @property
    def measure(self) -> float:
        """Total Lebesgue measure of the union."""
        return sum(iv.length for iv in self._intervals)

    def contains(self, x: float) -> bool:
        """Membership test (linear scan; unions here are tiny)."""
        return any(iv.contains(x) for iv in self._intervals)

    def clip(self, lo: float, hi: float) -> "IntervalUnion":
        """Intersect every component with ``[lo, hi]``."""
        return IntervalUnion(iv.clip(lo, hi) for iv in self._intervals)

    def union(self, other: "IntervalUnion") -> "IntervalUnion":
        """Set union with another interval union."""
        return IntervalUnion([*self._intervals, *other._intervals])

    def add(self, interval: Interval) -> "IntervalUnion":
        """Return a new union including ``interval``."""
        return IntervalUnion([*self._intervals, interval])

    def complement(self, lo: float, hi: float) -> "IntervalUnion":
        """The set difference ``[lo, hi] \\ self``."""
        gaps: list[Interval] = []
        cursor = lo
        for iv in self.clip(lo, hi).intervals:
            if iv.lo > cursor:
                gaps.append(Interval(cursor, iv.lo))
            cursor = max(cursor, iv.hi)
        if cursor < hi:
            gaps.append(Interval(cursor, hi))
        return IntervalUnion(gaps)

    def measure_under(self, cdf: Callable[[float], float]) -> float:
        """Probability mass of the union under a distribution CDF.

        Computes ``sum(cdf(hi_k) − cdf(lo_k))`` over the disjoint components,
        which equals ``P(X in union)`` for a continuous random variable.
        """
        return sum(float(cdf(iv.hi)) - float(cdf(iv.lo)) for iv in self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalUnion):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        parts = ", ".join(f"[{iv.lo:g}, {iv.hi:g}]" for iv in self._intervals)
        return f"IntervalUnion({parts})"


def measure_under_many(
    unions: Sequence["IntervalUnion"],
    cdf_batch: Callable[[list[float]], Sequence[float]],
) -> list[float]:
    """Probability mass of many unions under one distribution, batched.

    Gathers every endpoint of every union into a single ``cdf_batch`` call
    (the batched-CDF hook of :class:`~repro.distributions.base.
    DurationDistribution`) and reduces each union in the same
    ``cdf(hi) − cdf(lo)`` order as :meth:`IntervalUnion.measure_under`, so
    ``measure_under_many(unions, d.cdf_batch)[k] ==
    unions[k].measure_under(d.cdf)`` bit for bit.
    """
    args: list[float] = []
    for union in unions:
        for iv in union:
            args.append(iv.hi)
            args.append(iv.lo)
    values = cdf_batch(args)
    out: list[float] = []
    cursor = 0
    for union in unions:
        total = 0.0
        for _ in range(len(union)):
            total += float(values[cursor]) - float(values[cursor + 1])
            cursor += 2
        out.append(total)
    return out
