"""Definite-integral quadrature rules.

The hit-probability model evaluates many integrals of the form
``integral of g(u) over [a, b]`` where ``g`` is built from a distribution CDF
and is piecewise smooth.  Gauss–Legendre quadrature with a modest number of
nodes is both fast and accurate for these, and is the default used by the
model.  Composite trapezoid/Simpson rules and an adaptive Simpson routine are
provided for validation and for integrands with limited smoothness.

All routines integrate scalar-valued callables over a finite interval and
return a ``float``.  Vectorised evaluation is used where the callable accepts
NumPy arrays (``gauss_legendre`` probes for this and falls back to a scalar
loop when the callable does not broadcast).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.exceptions import NumericsError

__all__ = [
    "trapezoid",
    "simpson",
    "adaptive_simpson",
    "gauss_legendre",
    "gauss_legendre_nodes",
    "lerp_many",
    "fixed_quadrature",
]

#: Default number of Gauss–Legendre nodes.  32 nodes integrate polynomials up
#: to degree 63 exactly and give ~1e-12 accuracy on the smooth CDF-based
#: integrands that the hit model produces.
DEFAULT_GL_NODES = 32


def _validate_bounds(a: float, b: float) -> None:
    if not (math.isfinite(a) and math.isfinite(b)):
        raise NumericsError(f"integration bounds must be finite, got [{a}, {b}]")


def trapezoid(func: Callable[[float], float], a: float, b: float, num_points: int = 257) -> float:
    """Composite trapezoid rule with ``num_points`` equally spaced samples.

    Parameters
    ----------
    func:
        Integrand; must accept a float and return a float.
    a, b:
        Finite integration bounds.  ``b < a`` yields the signed integral.
    num_points:
        Number of sample points (at least 2).
    """
    _validate_bounds(a, b)
    if num_points < 2:
        raise NumericsError(f"trapezoid needs at least 2 points, got {num_points}")
    if a == b:
        return 0.0
    xs = np.linspace(a, b, num_points)
    ys = np.asarray([float(func(float(x))) for x in xs])
    return float(np.trapezoid(ys, xs))


def simpson(func: Callable[[float], float], a: float, b: float, num_intervals: int = 256) -> float:
    """Composite Simpson rule over ``num_intervals`` (even) subintervals."""
    _validate_bounds(a, b)
    if num_intervals < 2 or num_intervals % 2:
        raise NumericsError(f"simpson needs an even interval count >= 2, got {num_intervals}")
    if a == b:
        return 0.0
    xs = np.linspace(a, b, num_intervals + 1)
    ys = np.asarray([float(func(float(x))) for x in xs])
    h = (b - a) / num_intervals
    return float(h / 3.0 * (ys[0] + ys[-1] + 4.0 * ys[1:-1:2].sum() + 2.0 * ys[2:-1:2].sum()))


def _simpson_segment(fa: float, fm: float, fb: float, a: float, b: float) -> float:
    return (b - a) / 6.0 * (fa + 4.0 * fm + fb)


def adaptive_simpson(
    func: Callable[[float], float],
    a: float,
    b: float,
    tol: float = 1e-10,
    max_depth: int = 40,
) -> float:
    """Adaptive Simpson quadrature with classic error-halving recursion.

    Subdivides until the two-panel Richardson estimate is within ``tol``
    (scaled by the subinterval length relative to the whole range) or
    ``max_depth`` levels of recursion have been used.
    """
    _validate_bounds(a, b)
    if a == b:
        return 0.0
    sign = 1.0
    if b < a:
        a, b = b, a
        sign = -1.0

    def recurse(lo: float, hi: float, flo: float, fmid: float, fhi: float,
                whole: float, eps: float, depth: int) -> float:
        mid = 0.5 * (lo + hi)
        lmid = 0.5 * (lo + mid)
        rmid = 0.5 * (mid + hi)
        flm = float(func(lmid))
        frm = float(func(rmid))
        left = _simpson_segment(flo, flm, fmid, lo, mid)
        right = _simpson_segment(fmid, frm, fhi, mid, hi)
        if depth >= max_depth or abs(left + right - whole) <= 15.0 * eps:
            return left + right + (left + right - whole) / 15.0
        return (
            recurse(lo, mid, flo, flm, fmid, left, eps / 2.0, depth + 1)
            + recurse(mid, hi, fmid, frm, fhi, right, eps / 2.0, depth + 1)
        )

    fa, fb = float(func(a)), float(func(b))
    fm = float(func(0.5 * (a + b)))
    whole = _simpson_segment(fa, fm, fb, a, b)
    return sign * recurse(a, b, fa, fm, fb, whole, tol, 0)


@lru_cache(maxsize=32)
def _gl_nodes(num_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached Gauss–Legendre nodes/weights on the reference interval [-1, 1]."""
    nodes, weights = np.polynomial.legendre.leggauss(num_nodes)
    return nodes, weights


@lru_cache(maxsize=32)
def gauss_legendre_nodes(num_nodes: int) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Gauss–Legendre nodes and weights on ``[-1, 1]`` as plain floats.

    The batched hit-model kernels consume the rule directly (they fuse the
    node loop into one array evaluation); exposing it here keeps every
    quadrature constant in one place.  Values are bit-identical to the
    arrays :func:`gauss_legendre` uses internally.
    """
    if num_nodes < 1:
        raise NumericsError(f"gauss_legendre_nodes needs >= 1 node, got {num_nodes}")
    nodes, weights = _gl_nodes(num_nodes)
    return tuple(float(x) for x in nodes), tuple(float(w) for w in weights)


def lerp_many(cs, xp, fp) -> list[float]:
    """Batched piecewise-linear interpolation, bit-compatible with ``np.interp``.

    ``xp`` must be strictly increasing; ``fp`` the corresponding ordinates
    (both plain-float sequences).  Each query reproduces ``np.interp``'s
    arithmetic exactly — same bracketing convention (largest ``j`` with
    ``xp[j] <= c``), same ``slope*(c - xp[j]) + fp[j]`` formula, same
    saturation to ``fp[0]``/``fp[-1]`` outside the grid — so the stdlib
    backend of the batched hit model rounds identically to the NumPy one.
    """
    last = len(xp) - 1
    out: list[float] = []
    append = out.append
    for c in cs:
        if c <= xp[0]:
            append(fp[0])
        elif c >= xp[last]:
            append(fp[last])
        else:
            j = bisect_right(xp, c) - 1
            xj = xp[j]
            if xj == c:
                append(fp[j])
            else:
                slope = (fp[j + 1] - fp[j]) / (xp[j + 1] - xj)
                append(slope * (c - xj) + fp[j])
    return out


def gauss_legendre(
    func: Callable,
    a: float,
    b: float,
    num_nodes: int = DEFAULT_GL_NODES,
) -> float:
    """Gauss–Legendre quadrature of ``func`` over ``[a, b]``.

    The integrand is first probed with an array argument; if it broadcasts,
    a single vectorised call is used, otherwise a scalar loop.
    """
    _validate_bounds(a, b)
    if num_nodes < 1:
        raise NumericsError(f"gauss_legendre needs >= 1 node, got {num_nodes}")
    if a == b:
        return 0.0
    nodes, weights = _gl_nodes(num_nodes)
    half = 0.5 * (b - a)
    mid = 0.5 * (a + b)
    xs = mid + half * nodes
    try:
        ys = np.asarray(func(xs), dtype=float)
    except (TypeError, ValueError, IndexError):
        ys = None
    if ys is None or ys.shape != xs.shape:
        # Scalar-only integrand: evaluate pointwise instead of vectorised.
        ys = np.asarray([float(func(float(x))) for x in xs])
    return float(half * np.dot(weights, ys))


def fixed_quadrature(
    func: Callable,
    a: float,
    b: float,
    breakpoints: tuple[float, ...] = (),
    num_nodes: int = DEFAULT_GL_NODES,
) -> float:
    """Gauss–Legendre quadrature split at known kinks of the integrand.

    The hit model's integrands are piecewise smooth with kinks at partition
    boundaries; passing those positions as ``breakpoints`` restores spectral
    accuracy.  Breakpoints outside ``(a, b)`` are ignored.
    """
    _validate_bounds(a, b)
    if a == b:
        return 0.0
    sign = 1.0
    if b < a:
        a, b = b, a
        sign = -1.0
    cuts = sorted({a, b, *(p for p in breakpoints if a < p < b)})
    total = 0.0
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        total += gauss_legendre(func, lo, hi, num_nodes=num_nodes)
    return sign * total
