"""Numerical substrate: quadrature, root finding, interval algebra, statistics.

The analytical model of the paper is a stack of nested definite integrals of a
general probability density over geometrically-derived limits.  Rather than
depending on symbolic manipulation, the package evaluates them with the
routines in this subpackage:

* :mod:`repro.numerics.quadrature` — fixed and adaptive quadrature rules.
* :mod:`repro.numerics.rootfind` — bracketed scalar root finding.
* :mod:`repro.numerics.intervals` — closed-interval union algebra (the hit
  duration sets of Section 3 are unions of intervals).
* :mod:`repro.numerics.stats` — summary statistics and confidence intervals
  for simulation output analysis.
"""

from repro.numerics.intervals import Interval, IntervalUnion
from repro.numerics.quadrature import (
    adaptive_simpson,
    fixed_quadrature,
    gauss_legendre,
    simpson,
    trapezoid,
)
from repro.numerics.rootfind import bisect, brent, find_bracket
from repro.numerics.stats import (
    RunningStat,
    SummaryStatistics,
    confidence_interval,
    summarize,
)

__all__ = [
    "Interval",
    "IntervalUnion",
    "adaptive_simpson",
    "fixed_quadrature",
    "gauss_legendre",
    "simpson",
    "trapezoid",
    "bisect",
    "brent",
    "find_bracket",
    "RunningStat",
    "SummaryStatistics",
    "confidence_interval",
    "summarize",
]
