"""Example 1: optimal buffer/stream allocation for the three-movie system.

The paper's instance: movies of 75, 60 and 90 minutes with wait targets 0.1,
0.5 and 0.25 minutes; VCR durations gamma(2, 4) (mean 8) for movie 1 and
exponential with means 5 and 2 for movies 2 and 3; ``P* = 0.5`` for all.
Published answer (with ``n_s = 1230``, the pure-batching stream count):

    ``[(B*, n*)] = [(39, 360), (30, 60), (44.5, 182)]`` —
    113.5 buffer-minutes and 602 streams, saving 628 streams.

The paper does not print the VCR mix used; with the Figure-7(d) mix our
optimum lands within a few percent of every published number (the published
pairs sit almost exactly on our P(hit) = 0.5 contour), which is the
strongest available confirmation of that reading.
"""

from __future__ import annotations

from repro.core.hitmodel import VCRMix
from repro.distributions.exponential import ExponentialDuration
from repro.distributions.gamma import GammaDuration
from repro.experiments.reporting import ExperimentResult, Table
from repro.sizing.feasible import MovieSizingSpec
from repro.sizing.planner import SystemSizer

__all__ = ["run_example1", "paper_example1_specs", "PAPER_EXAMPLE1_ANSWER"]

#: The allocation printed in the paper: name -> (B*, n*).
PAPER_EXAMPLE1_ANSWER = {
    "movie1": (39.0, 360),
    "movie2": (30.0, 60),
    "movie3": (44.5, 182),
}
PAPER_TOTAL_BUFFER = 113.5
PAPER_TOTAL_STREAMS = 602
PAPER_BATCHING_STREAMS = 1230


def paper_example1_specs(mix: VCRMix | None = None) -> list[MovieSizingSpec]:
    """The three movies exactly as Example 1 defines them."""
    mix = mix or VCRMix.paper_figure7d()
    return [
        MovieSizingSpec(
            "movie1", length=75.0, max_wait=0.1,
            durations=GammaDuration(shape=2.0, scale=4.0), p_star=0.5, mix=mix,
        ),
        MovieSizingSpec(
            "movie2", length=60.0, max_wait=0.5,
            durations=ExponentialDuration(mean=5.0), p_star=0.5, mix=mix,
        ),
        MovieSizingSpec(
            "movie3", length=90.0, max_wait=0.25,
            durations=ExponentialDuration(mean=2.0), p_star=0.5, mix=mix,
        ),
    ]


def run_example1(fast: bool = False) -> ExperimentResult:
    """Solve Example 1 and put our numbers beside the paper's."""
    sizer = SystemSizer(paper_example1_specs())
    report = sizer.solve(stream_budget=PAPER_BATCHING_STREAMS)

    result = ExperimentResult(
        experiment_id="example1",
        title="Example 1: optimal (B*, n*) per movie, P*=0.5, n_s=1230",
    )
    table = result.add_table(
        Table(
            caption="allocation: reproduction vs paper",
            headers=(
                "movie", "n* (ours)", "B* (ours)", "P(hit)",
                "n* (paper)", "B* (paper)", "batching n",
            ),
        )
    )
    for allocation in report.result.allocations:
        paper_buffer, paper_streams = PAPER_EXAMPLE1_ANSWER[allocation.spec.name]
        table.add_row(
            allocation.spec.name,
            allocation.num_streams,
            allocation.buffer_minutes,
            allocation.hit_probability,
            paper_streams,
            paper_buffer,
            allocation.spec.pure_batching_streams,
        )
    totals = result.add_table(
        Table(
            caption="totals",
            headers=("quantity", "ours", "paper"),
        )
    )
    totals.add_row("total streams", report.result.total_streams, PAPER_TOTAL_STREAMS)
    totals.add_row(
        "total buffer (min)", report.result.total_buffer_minutes, PAPER_TOTAL_BUFFER
    )
    totals.add_row(
        "streams saved vs batching",
        report.result.streams_saved,
        PAPER_BATCHING_STREAMS - PAPER_TOTAL_STREAMS,
    )
    result.add_note(
        "paper's VCR mix is unstated; the Figure-7(d) mix (0.2/0.2/0.6) puts the "
        "published (B*, n*) pairs almost exactly on our P(hit)=0.5 contour"
    )
    for line in report.summary_lines():
        result.add_note(line)
    return result
