"""Registry mapping experiment ids to runner callables."""

from __future__ import annotations

import inspect
from functools import partial
from typing import Callable, Dict

from repro.experiments.ablations import (
    run_ablation_distributions,
    run_ablation_model,
    run_ablation_population,
    run_ablation_rates,
    run_ablation_sensitivity,
    run_ablation_server,
)
from repro.experiments.chaos import run_chaos
from repro.experiments.example1 import run_example1
from repro.experiments.example2 import run_example2
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.online import run_online_control
from repro.experiments.reporting import ExperimentResult
from repro.experiments.reservation import run_reservation
from repro.obs.log import get_logger

__all__ = ["EXPERIMENTS", "available_experiments", "run_experiment"]

_log = get_logger("experiments")

EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "figure7a": partial(run_figure7, "a"),
    "figure7b": partial(run_figure7, "b"),
    "figure7c": partial(run_figure7, "c"),
    "figure7d": partial(run_figure7, "d"),
    "figure8": run_figure8,
    "figure9": run_figure9,
    "example1": run_example1,
    "example2": run_example2,
    "ablation-model": run_ablation_model,
    "ablation-server": run_ablation_server,
    "ablation-distributions": run_ablation_distributions,
    "ablation-reservation": run_reservation,
    "ablation-rates": run_ablation_rates,
    "ablation-sensitivity": run_ablation_sensitivity,
    "ablation-population": run_ablation_population,
    "online-control": run_online_control,
    "chaos": run_chaos,
}


def available_experiments() -> list[str]:
    """All registered experiment ids in presentation order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    fast: bool = False,
    workers: int | None = 1,
    tracer=None,
    registry=None,
) -> ExperimentResult:
    """Run one experiment by id.

    ``fast`` selects reduced grids/horizons (used by benchmarks and CI);
    the default settings match the fidelity of the paper's evaluation.
    ``workers`` fans parallelisable experiments (the Figure-8/9 grids) out
    over a deterministic process pool — output is identical for any worker
    count.  ``tracer`` (a :class:`~repro.obs.trace.TraceWriter`) and
    ``registry`` (an :class:`~repro.obs.registry.ObsRegistry`) are forwarded
    to runners instrumented for them; runners without the matching parameter
    simply ignore the knob.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {available_experiments()}"
        ) from None
    _log.info("running experiment %s (fast=%s, workers=%s)", experiment_id, fast, workers)
    params = inspect.signature(runner).parameters
    kwargs: dict = {}
    if "workers" in params:
        kwargs["workers"] = workers
    if "tracer" in params:
        kwargs["tracer"] = tracer
    if "registry" in params:
        kwargs["registry"] = registry
    return runner(fast, **kwargs)
