"""Plain-text tables and experiment result containers.

The paper's figures are line plots; in a text environment we report the same
data as aligned tables (one row per x-value, one column per series), which is
also the format the benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["Table", "ExperimentResult"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


@dataclass
class Table:
    """An aligned plain-text table with a caption."""

    caption: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; the cell count must match the headers."""
        if len(values) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(values)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            index = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {list(self.headers)}") from None
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
            for i, header in enumerate(self.headers)
        ]
        out = io.StringIO()
        out.write(f"{self.caption}\n")
        header_line = "  ".join(str(h).rjust(w) for h, w in zip(self.headers, widths))
        out.write(header_line + "\n")
        out.write("-" * len(header_line) + "\n")
        for row in cells:
            out.write("  ".join(cell.rjust(w) for cell, w in zip(row, widths)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        lines = [",".join(str(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(_format_cell(v) for v in row))
        return "\n".join(lines) + "\n"


@dataclass
class ExperimentResult:
    """Everything one experiment produced: tables, charts and notes."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Execution telemetry (a :class:`repro.parallel.ParallelOutcome`) when
    #: the experiment fanned out over workers; not part of the rendered
    #: report, so output stays identical across worker counts.
    parallel_outcome: Any = None

    def add_table(self, table: Table) -> Table:
        """Attach a table and return it for row filling."""
        self.tables.append(table)
        return table

    def add_chart(self, chart: str) -> None:
        """Attach a pre-rendered ASCII chart shown after the tables."""
        self.charts.append(chart)

    def add_note(self, note: str) -> None:
        """Attach a free-form note shown below the tables."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the full experiment report as plain text."""
        out = io.StringIO()
        out.write(f"== {self.experiment_id}: {self.title} ==\n\n")
        for table in self.tables:
            out.write(table.render())
            out.write("\n")
        for chart in self.charts:
            out.write(chart)
            out.write("\n")
        if self.notes:
            out.write("notes:\n")
            for note in self.notes:
                out.write(f"  * {note}\n")
        return out.getvalue()
