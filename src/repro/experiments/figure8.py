"""Figure 8: feasible (B, n) pairs per movie at 5-minute buffer steps.

For each Example-1 movie, the paper plots every ``(B, n)`` pair on the
Eq.-(2) line whose hit probability meets ``P* = 0.5``, stepping the buffer in
5-minute increments.  The reproduced table lists, per step, the stream count
and achieved hit probability; the frontier boundary (the largest feasible
``n`` / smallest feasible ``B``) is the per-movie optimum Example 1 picks.

The per-movie frontiers are independent, so with ``workers > 1`` each movie
is evaluated as one :class:`~repro.parallel.sweeps.FrontierTask` on the
deterministic executor; the driver then renders the tables from warm
feasible sets, producing output byte-identical to a serial run.
"""

from __future__ import annotations

from repro.experiments.example1 import paper_example1_specs
from repro.experiments.reporting import ExperimentResult, Table
from repro.obs.adapters import export_parallel_outcome
from repro.obs.registry import TIER_STABLE
from repro.obs.spans import span
from repro.parallel.sweeps import FrontierTask, sweep_frontiers, warm_feasible_set

__all__ = ["run_figure8", "figure8_tasks"]


def figure8_tasks(fast: bool = False) -> list[FrontierTask]:
    """The per-movie work orders for the Figure-8 sweep."""
    step = 10.0 if fast else 5.0
    tasks = []
    for spec in paper_example1_specs():
        stream_counts = sorted(
            {
                max(1, round((spec.length - b) / spec.max_wait))
                for b in _buffer_steps(spec.length, step)
            }
        )
        tasks.append(FrontierTask(spec, stream_counts=tuple(stream_counts)))
    return tasks


def run_figure8(
    fast: bool = False, workers: int | None = 1, tracer=None, registry=None
) -> ExperimentResult:
    """Reproduce Figure 8's feasible sets (5-minute buffer granularity).

    With a trace writer attached, the driver emits one deterministic
    ``frontier`` event per evaluated ``(B, n)`` point *after* the sweep (the
    events replay the warm feasible sets, never worker-side state), so the
    trace is byte-identical for any worker count.  A metrics registry gains
    stable-tier frontier counters and process-tier sweep telemetry.
    """
    step = 10.0 if fast else 5.0
    result = ExperimentResult(
        experiment_id="figure8",
        title=f"Figure 8: feasible (B, n) pairs, {step:g}-minute buffer steps, P*=0.5",
    )
    tasks = figure8_tasks(fast)
    with span("experiment.figure8"):
        frontiers, outcome = sweep_frontiers(tasks, workers=workers)
    result.parallel_outcome = outcome
    tracer = tracer if tracer is not None and tracer.enabled else None
    if tracer is not None:
        tracer.emit("run_start", 0.0, label="figure8")
    points_metric = None
    if registry is not None:
        points_metric = registry.counter(
            "repro_frontier_points_total",
            "Feasibility-frontier points evaluated, by movie and verdict.",
            labelnames=("movie", "feasible"),
            tier=TIER_STABLE,
        )
        export_parallel_outcome(outcome, registry)
    for task, frontier in zip(tasks, frontiers):
        spec = task.spec
        feasible = warm_feasible_set(spec, frontier)
        table = result.add_table(
            Table(
                caption=(
                    f"{spec.name}: l={spec.length:g} min, w={spec.max_wait:g} min, "
                    f"durations {spec.durations.describe()}"
                ),
                headers=("B_minutes", "n", "P(hit)", "feasible"),
            )
        )
        for point in feasible.curve(task.stream_counts):
            meets = point.meets(spec.p_star)
            table.add_row(
                point.buffer_minutes,
                point.num_streams,
                point.hit_probability,
                "yes" if meets else "no",
            )
            if tracer is not None:
                tracer.emit(
                    "frontier",
                    0.0,
                    name=spec.name,
                    streams=point.num_streams,
                    buffer_minutes=point.buffer_minutes,
                    p_hit=point.hit_probability,
                    feasible=meets,
                )
            if points_metric is not None:
                points_metric.labels(spec.name, "yes" if meets else "no").inc()
        best = feasible.best_point()
        result.add_note(
            f"{spec.name}: frontier boundary at n={best.num_streams}, "
            f"B={best.buffer_minutes:.1f} min (P(hit)={best.hit_probability:.4f})"
        )
    if tracer is not None:
        tracer.emit("run_end", 0.0, label="figure8")
        tracer.flush()
    return result


def _buffer_steps(length: float, step: float) -> list[float]:
    steps = []
    value = step
    while value < length:
        steps.append(value)
        value += step
    return steps
