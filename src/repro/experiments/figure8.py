"""Figure 8: feasible (B, n) pairs per movie at 5-minute buffer steps.

For each Example-1 movie, the paper plots every ``(B, n)`` pair on the
Eq.-(2) line whose hit probability meets ``P* = 0.5``, stepping the buffer in
5-minute increments.  The reproduced table lists, per step, the stream count
and achieved hit probability; the frontier boundary (the largest feasible
``n`` / smallest feasible ``B``) is the per-movie optimum Example 1 picks.
"""

from __future__ import annotations

from repro.experiments.example1 import paper_example1_specs
from repro.experiments.reporting import ExperimentResult, Table
from repro.sizing.feasible import FeasibleSet

__all__ = ["run_figure8"]


def run_figure8(fast: bool = False) -> ExperimentResult:
    """Reproduce Figure 8's feasible sets (5-minute buffer granularity)."""
    step = 10.0 if fast else 5.0
    result = ExperimentResult(
        experiment_id="figure8",
        title=f"Figure 8: feasible (B, n) pairs, {step:g}-minute buffer steps, P*=0.5",
    )
    for spec in paper_example1_specs():
        feasible = FeasibleSet(spec)
        table = result.add_table(
            Table(
                caption=(
                    f"{spec.name}: l={spec.length:g} min, w={spec.max_wait:g} min, "
                    f"durations {spec.durations.describe()}"
                ),
                headers=("B_minutes", "n", "P(hit)", "feasible"),
            )
        )
        for point in feasible.curve(
            sorted(
                {
                    max(1, round((spec.length - b) / spec.max_wait))
                    for b in _buffer_steps(spec.length, step)
                }
            )
        ):
            table.add_row(
                point.buffer_minutes,
                point.num_streams,
                point.hit_probability,
                "yes" if point.meets(spec.p_star) else "no",
            )
        best = feasible.best_point()
        result.add_note(
            f"{spec.name}: frontier boundary at n={best.num_streams}, "
            f"B={best.buffer_minutes:.1f} min (P(hit)={best.hit_probability:.4f})"
        )
    return result


def _buffer_steps(length: float, step: float) -> list[float]:
    steps = []
    value = step
    while value < length:
        steps.append(value)
        value += step
    return steps
