"""Figure 9: system cost versus total streams for six values of φ.

For the Example-1 three-movie system, each panel prices the minimum-buffer
allocation at every total-stream budget with ``C = C_n (φ ΣB + Σn)`` and a
different memory/bandwidth price ratio ``φ ∈ {3, 4, 6, 10, 11, 16}``.

Reproduction target (the paper's reading of its own figure): for large φ
(1997 prices, memory dominates — panels (e)/(f)) the cost is monotone
decreasing in the stream count, so the optimum sits at the maximum feasible
``Σn``; for small φ (cheap memory — panels (a)–(d)) the optimum moves to an
interior or minimum-stream point.  The crossover, not the absolute dollars,
is the result.

With ``workers > 1`` the grid runs in two parallel phases: phase 1 finds
every movie's ``n_max`` (the bisection), then the driver predicts — via
:func:`~repro.sizing.optimizer.planned_streams`, pure arithmetic — exactly
which allocation points the budget sweep will touch and phase 2 evaluates
those, warm-started from phase 1's points.  The driver's cost curves then
run entirely against warm feasible sets, so output is byte-identical to a
serial run.
"""

from __future__ import annotations

from repro.exceptions import InfeasibleError
from repro.experiments.example1 import paper_example1_specs
from repro.experiments.charts import ascii_chart
from repro.experiments.reporting import ExperimentResult, Table
from repro.parallel.executor import ParallelExecutor, ParallelOutcome
from repro.parallel.sweeps import FrontierTask, sweep_frontiers, warm_feasible_set
from repro.sizing.cost import PAPER_PHI_VALUES, CostModel, cost_curve, optimal_cost_point
from repro.sizing.optimizer import planned_streams

__all__ = ["run_figure9"]


def run_figure9(fast: bool = False, workers: int | None = 1) -> ExperimentResult:
    """Reproduce all six panels of Figure 9."""
    specs = paper_example1_specs()
    executor = ParallelExecutor(workers)

    # Phase 1: each movie's n_max (bisection + verification walk).
    phase1, outcome1 = sweep_frontiers(
        [FrontierTask(spec) for spec in specs], executor=executor
    )
    max_total = sum(frontier.n_max for frontier in phase1)
    min_total = len(specs)
    num_points = 8 if fast else 24
    stream_totals = sorted(
        {
            int(round(min_total + i * (max_total - min_total) / (num_points - 1)))
            for i in range(num_points)
        }
    )

    # Phase 2: pre-evaluate exactly the allocation points the budget sweep
    # will touch — the greedy plan is pure arithmetic over (name, w, n_max).
    movies = [
        (spec.name, spec.max_wait, frontier.n_max)
        for spec, frontier in zip(specs, phase1)
    ]
    needed: dict[str, set[int]] = {spec.name: set() for spec in specs}
    for total in stream_totals:
        try:
            plan = planned_streams(movies, int(total))
        except InfeasibleError:
            continue
        for name, num_streams in plan.items():
            needed[name].add(num_streams)
    phase2, outcome2 = sweep_frontiers(
        [
            FrontierTask(
                spec,
                stream_counts=tuple(sorted(needed[spec.name])),
                find_max=False,
                warm_points=frontier.points,
            )
            for spec, frontier in zip(specs, phase1)
        ],
        executor=executor,
    )
    feasible_sets = [
        warm_feasible_set(spec, frontier) for spec, frontier in zip(specs, phase2)
    ]

    result = ExperimentResult(
        experiment_id="figure9",
        title="Figure 9: system cost vs number of I/O streams, phi in "
        f"{tuple(int(p) if p == int(p) else p for p in PAPER_PHI_VALUES)}",
    )
    result.parallel_outcome = ParallelOutcome.merge(outcome1, outcome2)
    chart_series: dict[str, list[tuple[float, float]]] = {}
    for phi in PAPER_PHI_VALUES:
        cost_model = CostModel.from_phi(phi)
        points = cost_curve(feasible_sets, cost_model, stream_totals=stream_totals)
        table = result.add_table(
            Table(
                caption=f"phi = {phi:g} (C_b = {cost_model.cost_per_buffer_minute:g}, "
                f"C_n = {cost_model.cost_per_stream:g})",
                headers=("total_n", "total_B_minutes", "cost_dollars"),
            )
        )
        for point in points:
            table.add_row(point.total_streams, point.total_buffer_minutes, round(point.cost))
        chart_series[f"phi={phi:g}"] = [
            (float(p.total_streams), p.cost / 1000.0) for p in points
        ]
        optimum = optimal_cost_point(points)
        at_max = optimum.total_streams == max(p.total_streams for p in points)
        result.add_note(
            f"phi={phi:g}: cost optimum at total n = {optimum.total_streams} "
            f"(${optimum.cost:,.0f})"
            + (" — maximum feasible streams, memory-dominated regime" if at_max else
               " — interior optimum, bandwidth-dominated regime")
        )
    result.add_chart(
        ascii_chart(
            chart_series,
            title="system cost (k$) vs total streams",
            y_label="k$",
            x_label="total I/O streams",
            height=18,
        )
    )
    return result
