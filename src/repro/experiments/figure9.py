"""Figure 9: system cost versus total streams for six values of φ.

For the Example-1 three-movie system, each panel prices the minimum-buffer
allocation at every total-stream budget with ``C = C_n (φ ΣB + Σn)`` and a
different memory/bandwidth price ratio ``φ ∈ {3, 4, 6, 10, 11, 16}``.

Reproduction target (the paper's reading of its own figure): for large φ
(1997 prices, memory dominates — panels (e)/(f)) the cost is monotone
decreasing in the stream count, so the optimum sits at the maximum feasible
``Σn``; for small φ (cheap memory — panels (a)–(d)) the optimum moves to an
interior or minimum-stream point.  The crossover, not the absolute dollars,
is the result.
"""

from __future__ import annotations

from repro.experiments.example1 import paper_example1_specs
from repro.experiments.charts import ascii_chart
from repro.experiments.reporting import ExperimentResult, Table
from repro.sizing.cost import PAPER_PHI_VALUES, CostModel, cost_curve, optimal_cost_point
from repro.sizing.feasible import FeasibleSet

__all__ = ["run_figure9"]


def run_figure9(fast: bool = False) -> ExperimentResult:
    """Reproduce all six panels of Figure 9."""
    feasible_sets = [FeasibleSet(spec) for spec in paper_example1_specs()]
    max_total = sum(fs.max_streams() for fs in feasible_sets)
    min_total = len(feasible_sets)
    num_points = 8 if fast else 24
    stream_totals = sorted(
        {
            int(round(min_total + i * (max_total - min_total) / (num_points - 1)))
            for i in range(num_points)
        }
    )

    result = ExperimentResult(
        experiment_id="figure9",
        title="Figure 9: system cost vs number of I/O streams, phi in "
        f"{tuple(int(p) if p == int(p) else p for p in PAPER_PHI_VALUES)}",
    )
    chart_series: dict[str, list[tuple[float, float]]] = {}
    for phi in PAPER_PHI_VALUES:
        cost_model = CostModel.from_phi(phi)
        points = cost_curve(feasible_sets, cost_model, stream_totals=stream_totals)
        table = result.add_table(
            Table(
                caption=f"phi = {phi:g} (C_b = {cost_model.cost_per_buffer_minute:g}, "
                f"C_n = {cost_model.cost_per_stream:g})",
                headers=("total_n", "total_B_minutes", "cost_dollars"),
            )
        )
        for point in points:
            table.add_row(point.total_streams, point.total_buffer_minutes, round(point.cost))
        chart_series[f"phi={phi:g}"] = [
            (float(p.total_streams), p.cost / 1000.0) for p in points
        ]
        optimum = optimal_cost_point(points)
        at_max = optimum.total_streams == max(p.total_streams for p in points)
        result.add_note(
            f"phi={phi:g}: cost optimum at total n = {optimum.total_streams} "
            f"(${optimum.cost:,.0f})"
            + (" — maximum feasible streams, memory-dominated regime" if at_max else
               " — interior optimum, bandwidth-dominated regime")
        )
    result.add_chart(
        ascii_chart(
            chart_series,
            title="system cost (k$) vs total streams",
            y_label="k$",
            x_label="total I/O streams",
            height=18,
        )
    )
    return result
