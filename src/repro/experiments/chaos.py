"""Chaos experiment: graceful degradation vs a no-policy baseline.

Both arms run the identical server, workload seed, and generated
:class:`~repro.faults.plan.FaultPlan` — disk-bandwidth degradations, stream
revocations, and buffer pressure land at the same simulated instants.  The
only difference is what happens next:

* **baseline** — no :class:`~repro.vod.degradation.DegradationManager`; the
  fault layer revokes grants and evicts the newest partitions blindly, so
  affected viewers are dropped mid-session;
* **policy** — the manager's ordered shedding ladder (``shed_vcr`` →
  ``widen_restart`` → ``collapse_partition``) absorbs the same pressure by
  degrading service: VCR grants are sacrificed first, batching windows
  widen, and only then do partitions collapse, so viewers stall or lose
  resume service instead of their sessions.

The matrix covers two fault intensities.  Dominance criterion, checked per
intensity and stated in the result notes: the policy arm's session-drop rate
must be *strictly* below the baseline's, while its resume ``P(hit)`` stays
within the Wilson 95% confidence interval of the baseline's — degradation
must not purchase survival by silently gutting the hit probability.

With ``workers > 1`` each (intensity, arm) cell runs as one task on the
deterministic :class:`~repro.parallel.executor.ParallelExecutor`; workers
collect their simulation traces locally and the driver re-emits the events
through its own writer in task-index order, so the trace file is
byte-identical for any worker count (CI compares serial vs parallel with
``cmp``).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass

from repro.core.parameters import SystemConfiguration
from repro.distributions import ExponentialDuration
from repro.experiments.reporting import ExperimentResult, Table
from repro.faults import FaultPlan
from repro.obs.adapters import export_parallel_outcome
from repro.obs.registry import TIER_STABLE
from repro.obs.spans import span
from repro.obs.summarize import wilson_interval
from repro.obs.trace import TraceWriter
from repro.parallel.executor import ParallelExecutor
from repro.vod.buffer import BufferPool
from repro.vod.movie import Movie, MovieCatalog
from repro.vod.server import ServerMetricsReport, ServerWorkload, VODServer
from repro.vod.vcr import VCRBehavior

__all__ = [
    "ChaosCell",
    "ChaosOutcome",
    "ChaosTask",
    "chaos_server",
    "run_chaos",
    "run_chaos_arms",
    "run_chaos_task",
]

_INTENSITIES = (1.0, 3.0)
_FAULT_SEED = 5
_WORKLOAD_SEED = 11
_WARMUP = 100.0
_ARRIVAL_RATE = 0.8
_NUM_STREAMS = 40
_BUFFER_MINUTES = 100.0


def chaos_server(
    plan: FaultPlan | None,
    degrade: bool,
    horizon: float,
    warmup: float = _WARMUP,
    seed: int = _WORKLOAD_SEED,
    tracer=None,
) -> VODServer:
    """The standard chaos test-bed server, with the fault layer attached.

    Shared between the experiment's worker tasks and ``repro-vod faults
    run`` so a CLI invocation reproduces an experiment cell exactly.
    """
    catalog = MovieCatalog(
        [
            Movie(0, "hot-a", 60.0, popularity=0.45),
            Movie(1, "hot-b", 80.0, popularity=0.35),
            Movie(2, "tail-a", 90.0, popularity=0.1),
            Movie(3, "tail-b", 90.0, popularity=0.1),
        ],
        popular_count=2,
    )
    server = VODServer(
        catalog,
        {
            0: SystemConfiguration(60.0, 10, 30.0),
            1: SystemConfiguration(80.0, 10, 40.0),
        },
        num_streams=_NUM_STREAMS,
        buffer_pool=BufferPool.for_minutes(_BUFFER_MINUTES),
        behavior=VCRBehavior.uniform_duration_model(
            ExponentialDuration(5.0), mean_think_time=10.0
        ),
        workload=ServerWorkload(
            arrival_rate=_ARRIVAL_RATE, horizon=horizon, warmup=warmup, seed=seed
        ),
        tracer=tracer,
    )
    if plan is not None:
        server.attach_fault_layer(plan, degrade=degrade)
    return server


@dataclass(frozen=True)
class ChaosTask:
    """One (intensity, arm) cell's work order — plain data, picklable."""

    intensity: float
    degrade: bool
    horizon: float
    warmup: float = _WARMUP
    fault_seed: int = _FAULT_SEED
    workload_seed: int = _WORKLOAD_SEED
    collect_trace: bool = False


@dataclass(frozen=True)
class ChaosArmResult:
    """What a worker ships back: the report plus its raw trace lines."""

    report: ServerMetricsReport
    trace_lines: tuple[str, ...] = ()


def run_chaos_task(task: ChaosTask) -> ChaosArmResult:
    """Worker task: run one arm under its generated fault plan.

    Module-level so the executor can pickle it by reference.  The plan is a
    pure function of ``(fault_seed, horizon, intensity)`` and the server of
    its workload seed, so re-running the task (after a worker crash, or on a
    different worker count) reproduces the identical report and trace.
    """
    plan = FaultPlan.generate(
        seed=task.fault_seed, horizon=task.horizon, intensity=task.intensity
    )
    sink = io.StringIO() if task.collect_trace else None
    tracer = TraceWriter(sink) if sink is not None else None
    server = chaos_server(
        plan, task.degrade, task.horizon, warmup=task.warmup, seed=task.workload_seed,
        tracer=tracer,
    )
    report = server.run()
    lines: tuple[str, ...] = ()
    if tracer is not None:
        tracer.flush()
        lines = tuple(sink.getvalue().splitlines())
    return ChaosArmResult(report=report, trace_lines=lines)


@dataclass(frozen=True)
class ChaosCell:
    """Both arms of one intensity, plus the dominance verdict."""

    intensity: float
    baseline: ServerMetricsReport
    policy: ServerMetricsReport
    #: Wilson 95% CI of the baseline arm's resume hit probability.
    hit_ci: tuple[float, float]

    @property
    def drop_rate_dominates(self) -> bool:
        """Policy arm strictly improves the session-drop rate."""
        return self.policy.session_drop_rate < self.baseline.session_drop_rate

    @property
    def hit_within_ci(self) -> bool:
        """Policy arm's P(hit) sits inside the baseline's Wilson CI."""
        low, high = self.hit_ci
        return low <= self.policy.hit_rate <= high

    @property
    def dominates(self) -> bool:
        """The full dominance criterion for this intensity."""
        return self.drop_rate_dominates and self.hit_within_ci


@dataclass(frozen=True)
class ChaosOutcome:
    """All cells, in intensity order, plus parallel-execution telemetry."""

    cells: tuple[ChaosCell, ...]
    parallel_outcome: object = None

    @property
    def dominates_everywhere(self) -> bool:
        """The dominance criterion holds at every tested intensity."""
        return all(cell.dominates for cell in self.cells)


def chaos_tasks(fast: bool = False, collect_traces: bool = False) -> list[ChaosTask]:
    """The (intensity × arm) work orders, baseline before policy."""
    horizon = 420.0 if fast else 600.0
    return [
        ChaosTask(
            intensity=intensity,
            degrade=degrade,
            horizon=horizon,
            collect_trace=collect_traces,
        )
        for intensity in _INTENSITIES
        for degrade in (False, True)
    ]


def run_chaos_arms(
    fast: bool = False,
    workers: int | None = 1,
    collect_traces: bool = False,
) -> tuple[ChaosOutcome, list[ChaosArmResult]]:
    """Run the full matrix; returns the outcome plus raw per-task results.

    Split out from :func:`run_chaos` so the integration test can assert the
    dominance criterion on the reports directly.
    """
    tasks = chaos_tasks(fast, collect_traces=collect_traces)
    executor = ParallelExecutor(workers)
    outcome = executor.map(run_chaos_task, tasks)
    results = list(outcome.results)
    cells = []
    for index in range(0, len(tasks), 2):
        baseline = results[index].report
        policy = results[index + 1].report
        cells.append(
            ChaosCell(
                intensity=tasks[index].intensity,
                baseline=baseline,
                policy=policy,
                hit_ci=wilson_interval(
                    baseline.resume_hits,
                    baseline.resume_hits + baseline.resume_misses,
                ),
            )
        )
    return ChaosOutcome(cells=tuple(cells), parallel_outcome=outcome), results


def run_chaos(
    fast: bool = False, workers: int | None = 1, tracer=None, registry=None
) -> ExperimentResult:
    """Degraded-mode service vs the no-policy baseline under injected faults.

    With a trace writer attached, workers collect their simulation traces
    and the driver replays every event through its own writer in task-index
    order — re-validated and re-stamped with a single monotone ``seq`` — so
    the trace file is byte-identical for any worker count.
    """
    tracer = tracer if tracer is not None and tracer.enabled else None
    with span("experiment.chaos"):
        outcome, results = run_chaos_arms(
            fast, workers=workers, collect_traces=tracer is not None
        )
    result = ExperimentResult(
        experiment_id="chaos",
        title="Graceful degradation vs no-policy baseline under injected faults",
    )
    result.parallel_outcome = outcome.parallel_outcome
    if tracer is not None:
        tracer.emit("run_start", 0.0, label="chaos")
        for arm_result in results:
            for line in arm_result.trace_lines:
                obj = json.loads(line)
                payload = {
                    key: value
                    for key, value in obj.items()
                    if key not in ("v", "seq", "t", "ev")
                }
                # Replay path: the event name comes from an already-validated
                # trace line, so the static schema check cannot resolve it.
                tracer.emit(obj["ev"], obj["t"], **payload)  # lint: allow(trace-schema)
    drop_gauge = dropped_counter = None
    if registry is not None:
        drop_gauge = registry.gauge(
            "repro_chaos_session_drop_rate",
            "Session-drop rate per chaos cell.",
            labelnames=("intensity", "arm"),
            tier=TIER_STABLE,
        )
        dropped_counter = registry.counter(
            "repro_chaos_sessions_dropped_total",
            "Sessions lost to fault injection, per chaos cell.",
            labelnames=("intensity", "arm"),
            tier=TIER_STABLE,
        )
        export_parallel_outcome(outcome.parallel_outcome, registry)
    table = result.add_table(
        Table(
            caption=(
                "identical fault plan, workload and seeds per intensity; "
                "only the degradation policy differs"
            ),
            headers=(
                "intensity", "arm", "dropped", "drop_rate", "degraded",
                "p_hit", "faults", "revoked", "collapsed",
            ),
        )
    )
    for cell in outcome.cells:
        for arm, report in (("baseline", cell.baseline), ("policy", cell.policy)):
            table.add_row(
                cell.intensity,
                arm,
                report.viewers_dropped,
                round(report.session_drop_rate, 4),
                report.viewers_degraded,
                round(report.hit_rate, 4),
                report.faults_injected,
                report.streams_revoked,
                report.partitions_collapsed,
            )
            if drop_gauge is not None:
                label = f"{cell.intensity:g}"
                drop_gauge.labels(label, arm).set(report.session_drop_rate)
                dropped_counter.labels(label, arm).inc(report.viewers_dropped)
        low, high = cell.hit_ci
        verdict = "CONFIRMED" if cell.dominates else "VIOLATED"
        result.add_note(
            f"intensity {cell.intensity:g}: policy drop rate "
            f"{cell.policy.session_drop_rate:.4f} vs baseline "
            f"{cell.baseline.session_drop_rate:.4f} (strictly lower: "
            f"{'yes' if cell.drop_rate_dominates else 'no'}); policy P(hit) "
            f"{cell.policy.hit_rate:.4f} vs baseline Wilson 95% CI "
            f"[{low:.4f}, {high:.4f}] (within: "
            f"{'yes' if cell.hit_within_ci else 'no'}) — dominance {verdict}"
        )
    result.add_note(
        "dominance criterion: the policy arm must strictly lower the "
        "session-drop rate while keeping P(hit) inside the baseline's Wilson "
        "CI — degradation may trade VCR service and batching latency for "
        "session survival, but never the hit probability itself"
    )
    if tracer is not None:
        tracer.emit("run_end", 0.0, label="chaos")
        tracer.flush()
    return result
