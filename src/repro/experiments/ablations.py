"""Ablation experiments beyond the paper's own evaluation.

* **ablation-model** — the three independent evaluation paths for
  ``P(hit|FF)`` (paper equations, brute-force 2-D quadrature, interval
  engine) must agree; the table reports the pairwise gaps and the speedup of
  the closed-form engine, justifying its use in the sizing sweeps.
* **ablation-server** — the end-to-end payoff of model-based pre-allocation:
  run the full server under (i) the model-sized allocation, (ii) a naive
  equal buffer split, and (iii) pure batching, at identical total resources,
  and compare hit rates, VCR denials and streams pinned by misses.
* **ablation-distributions** — fix the mean VCR duration and swap the
  distribution family; quantifies how much the model's "general pdf" freedom
  actually matters for sizing.
"""

from __future__ import annotations

import math

from repro.core.hitmodel import HitProbabilityModel, VCRMix
from repro.core.hitsets import hit_probability
from repro.core.fastforward import p_hit_fastforward, p_hit_fastforward_direct
from repro.core.parameters import SystemConfiguration
from repro.core.vcrop import VCROperation
from repro.distributions import (
    DeterministicDuration,
    ExponentialDuration,
    GammaDuration,
    LognormalDuration,
    UniformDuration,
    WeibullDuration,
    truncate,
)
from repro.experiments.reporting import ExperimentResult, Table
from repro.obs.spans import span
from repro.sizing.feasible import FeasibleSet, MovieSizingSpec
from repro.vod.batching import (
    allocation_buffer_total,
    allocation_stream_total,
    equal_split_allocation,
    pure_batching_allocation,
)
from repro.vod.buffer import BufferPool
from repro.vod.movie import Movie, MovieCatalog
from repro.vod.server import ServerWorkload, VODServer
from repro.vod.vcr import VCRBehavior

__all__ = ["run_ablation_model", "run_ablation_server", "run_ablation_distributions"]


# ----------------------------------------------------------------------
# A1: model evaluation paths.
# ----------------------------------------------------------------------
def run_ablation_model(fast: bool = False) -> ExperimentResult:
    """Agreement and speed of the three P(hit|FF) evaluation paths."""
    length = 120.0
    duration = truncate(GammaDuration.paper_figure7(), length)
    grid = [(10, 1.0), (30, 1.0), (60, 1.0)] if fast else [
        (10, 1.0), (20, 1.0), (30, 1.0), (60, 1.0), (90, 1.0), (30, 0.5), (60, 0.25),
    ]
    result = ExperimentResult(
        experiment_id="ablation-model",
        title="Ablation: paper equations vs 2-D quadrature vs interval engine (FF)",
    )
    table = result.add_table(
        Table(
            caption="P(hit|FF) by evaluation path",
            headers=("n", "w", "engine", "paper_eqs", "direct2d", "max_gap",
                     "t_engine_ms", "t_paper_ms"),
        )
    )
    worst = 0.0
    speedups = []
    for n, w in grid:
        config = SystemConfiguration.from_wait(length, n, w)
        with span("ablation.model.engine") as t_engine:
            engine = hit_probability(VCROperation.FAST_FORWARD, config, duration)
        with span("ablation.model.paper_eqs") as t_paper:
            paper = p_hit_fastforward(config, duration)
        direct = p_hit_fastforward_direct(config, duration)
        gap = max(abs(engine - paper), abs(engine - direct), abs(paper - direct))
        worst = max(worst, gap)
        speedups.append(t_paper.elapsed / max(t_engine.elapsed, 1e-9))
        table.add_row(
            n, w, engine, paper, direct, gap,
            round(t_engine.elapsed * 1e3, 2), round(t_paper.elapsed * 1e3, 2),
        )
    result.add_note(f"worst pairwise gap: {worst:.2e}")
    result.add_note(
        f"median engine speedup over the paper-equation path: "
        f"{sorted(speedups)[len(speedups) // 2]:.0f}x"
    )
    return result


# ----------------------------------------------------------------------
# A2: allocation policies on the full server.
# ----------------------------------------------------------------------
def _example1_catalog() -> MovieCatalog:
    """Example 1's movies embedded in a catalog with a small long tail."""
    popular = [
        Movie(0, "movie1", 75.0, popularity=0.30),
        Movie(1, "movie2", 60.0, popularity=0.25),
        Movie(2, "movie3", 90.0, popularity=0.20),
    ]
    tail = [
        Movie(3 + i, f"tail-{i}", 100.0, popularity=0.25 / 5) for i in range(5)
    ]
    return MovieCatalog(popular + tail, popular_count=3)


def run_ablation_server(fast: bool = False) -> ExperimentResult:
    """Pre-allocation policies head to head on the full VOD server.

    Waits are relaxed from Example 1 (which needs 600+ streams) to keep the
    simulation light; the *comparison* across policies is the point.
    """
    catalog = _example1_catalog()
    popular = catalog.popular
    waits = {0: 1.0, 1: 2.0, 2: 1.5}
    # Example 1's per-movie duration statistics.
    durations = {
        0: GammaDuration.paper_figure7(),
        1: ExponentialDuration(5.0),
        2: ExponentialDuration(2.0),
    }
    behavior = {
        movie_id: VCRBehavior.uniform_duration_model(
            dist, VCRMix.paper_figure7d(), mean_think_time=12.0
        )
        for movie_id, dist in durations.items()
    }

    # Model-sized allocation at P* = 0.5, per-movie statistics.
    specs = [
        MovieSizingSpec(
            m.title, m.length, waits[m.movie_id],
            durations[m.movie_id], p_star=0.5,
        )
        for m in popular
    ]
    sized = {
        popular[i].movie_id: FeasibleSet(spec).configuration(FeasibleSet(spec).max_streams())
        for i, spec in enumerate(specs)
    }
    sized_buffer = sum(c.buffer_minutes for c in sized.values())
    naive = equal_split_allocation(popular, waits, total_buffer_minutes=sized_buffer)
    batching = pure_batching_allocation(popular, waits)

    policies = [("model-sized", sized), ("equal-split", naive), ("pure-batching", batching)]
    headroom = 30
    pool_streams = max(allocation_stream_total(a) for _, a in policies) + headroom

    result = ExperimentResult(
        experiment_id="ablation-server",
        title="Ablation: allocation policy vs end-to-end server behaviour",
    )
    table = result.add_table(
        Table(
            caption=f"identical stream pool ({pool_streams}) and workload; "
            "policies differ only in the popular-movie split",
            headers=("policy", "sum_n", "sum_B", "hit_rate", "vcr_denied",
                     "miss_hold_streams", "tail_rejected"),
        )
    )
    workload = ServerWorkload(
        arrival_rate=1.0,
        horizon=700.0 if fast else 1600.0,
        warmup=150.0 if fast else 300.0,
        seed=99,
    )
    for name, allocation in policies:
        server = VODServer(
            catalog,
            allocation,
            num_streams=pool_streams,
            buffer_pool=BufferPool.for_minutes(sized_buffer + 50.0),
            behavior=behavior,
            workload=workload,
        )
        report = server.run()
        table.add_row(
            name,
            allocation_stream_total(allocation),
            round(allocation_buffer_total(allocation), 1),
            report.hit_rate if not math.isnan(report.hit_rate) else 0.0,
            report.vcr_blocked,
            round(report.mean_streams_miss_hold, 2),
            report.rejected_unpopular,
        )
    result.add_note(
        "expected shape: model-sized >> pure batching on hit rate; pure batching "
        "pins every miss on a dedicated stream until piggybacking or the end of "
        "the movie, draining the shared pool"
    )
    return result


# ----------------------------------------------------------------------
# A3: duration-distribution sensitivity.
# ----------------------------------------------------------------------
def run_ablation_distributions(fast: bool = False) -> ExperimentResult:
    """Hit probability across distribution families at a fixed mean."""
    length = 120.0
    mean = 8.0
    families = [
        ("exponential", ExponentialDuration(mean)),
        ("gamma(2)", GammaDuration(2.0, mean / 2.0)),
        ("uniform", UniformDuration(0.0, 2.0 * mean)),
        ("deterministic", DeterministicDuration(mean)),
        ("lognormal(cv=1.5)", LognormalDuration.from_mean_cv(mean, 1.5)),
        ("weibull(0.7)", WeibullDuration.from_mean(mean, 0.7)),
    ]
    configs = [(30, 1.0)] if fast else [(15, 1.0), (30, 1.0), (60, 1.0)]
    result = ExperimentResult(
        experiment_id="ablation-distributions",
        title=f"Ablation: P(hit) sensitivity to the duration family (mean {mean:g} min)",
    )
    for n, w in configs:
        table = result.add_table(
            Table(
                caption=f"l={length:g}, n={n}, w={w:g} (B={length - n * w:g})",
                headers=("family", "P(hit|FF)", "P(hit|RW)", "P(hit|PAU)", "P(hit) mixed"),
            )
        )
        values = []
        for name, dist in families:
            model = HitProbabilityModel(length, dist, mix=VCRMix.paper_figure7d())
            config = model.configuration(n, length - n * w)
            breakdown = model.breakdown(config)
            values.append(breakdown.p_hit)
            table.add_row(
                name, breakdown.p_hit_ff, breakdown.p_hit_rw,
                breakdown.p_hit_pause, breakdown.p_hit,
            )
        result.add_note(
            f"n={n}: mixed P(hit) spread across families = "
            f"{max(values) - min(values):.4f} at fixed mean — the 'general pdf' "
            "generality is material, not cosmetic"
        )
    return result


# ----------------------------------------------------------------------
# A4: VCR speed sensitivity.
# ----------------------------------------------------------------------
def run_ablation_rates(fast: bool = False) -> ExperimentResult:
    """Hit probability versus the FF/RW speed multiple.

    The paper fixes ``R_FF = R_RW = 3 R_PB``.  Sweeping the speed shows a
    non-obvious property of the model: the FF hit probability is *not*
    monotone in the speed.  Faster scanning lowers ``alpha`` so distant
    partitions cost less duration to reach, but the own-partition window
    ``[0, alpha*d]`` shrinks at the same time; which force wins depends on
    the configuration and the duration distribution.
    """
    from repro.core.parameters import SystemConfiguration, VCRRates

    length = 120.0
    duration = truncate(GammaDuration.paper_figure7(), length)
    speedups = (1.5, 2.0, 3.0, 5.0, 8.0, 16.0) if not fast else (2.0, 3.0, 8.0)
    configs = [(30, 90.0), (60, 60.0)] if not fast else [(30, 90.0)]
    result = ExperimentResult(
        experiment_id="ablation-rates",
        title="Ablation: P(hit) vs VCR speed multiple (paper fixes 3x)",
    )
    for n, buffer_minutes in configs:
        table = result.add_table(
            Table(
                caption=f"l={length:g}, n={n}, B={buffer_minutes:g}",
                headers=("speedup", "alpha", "gamma", "P(hit|FF)", "P(hit|RW)"),
            )
        )
        ff_values = []
        for speedup in speedups:
            rates = VCRRates(
                playback=1.0, fast_forward=speedup, rewind=speedup
            )
            config = SystemConfiguration(length, n, buffer_minutes, rates=rates)
            ff = hit_probability(VCROperation.FAST_FORWARD, config, duration)
            rw = hit_probability(VCROperation.REWIND, config, duration)
            ff_values.append(ff)
            table.add_row(
                speedup,
                speedup / (speedup - 1.0),
                speedup / (1.0 + speedup),
                ff,
                rw,
            )
        monotone = ff_values == sorted(ff_values) or ff_values == sorted(
            ff_values, reverse=True
        )
        result.add_note(
            f"n={n}: P(hit|FF) across speedups spans "
            f"[{min(ff_values):.4f}, {max(ff_values):.4f}]"
            + ("" if monotone else " and is non-monotone in the speed")
        )
    result.add_note(
        "RW behaves oppositely to FF in gamma: faster rewind raises gamma "
        "toward 1, stretching the catch-up windows"
    )
    return result


# ----------------------------------------------------------------------
# A5: sizing robustness to mis-measured statistics.
# ----------------------------------------------------------------------
def run_ablation_sensitivity(fast: bool = False) -> ExperimentResult:
    """Sizing decisions under perturbed inputs (see repro.sizing.sensitivity)."""
    from repro.core.hitmodel import VCRMix
    from repro.distributions import DeterministicDuration, ExponentialDuration
    from repro.sizing.feasible import MovieSizingSpec
    from repro.sizing.sensitivity import SizingSensitivity

    spec = MovieSizingSpec(
        "movie", length=90.0, max_wait=1.0,
        durations=GammaDuration.paper_figure7(), p_star=0.5,
    )
    analysis = SizingSensitivity(spec)
    result = ExperimentResult(
        experiment_id="ablation-sensitivity",
        title="Ablation: sizing robustness to mis-measured VCR statistics",
    )

    def emit(caption: str, rows) -> None:
        table = result.add_table(
            Table(
                caption=caption,
                headers=("perturbation", "n*", "B*", "predicted_P", "realized_P",
                         "meets_target"),
            )
        )
        for row in rows:
            table.add_row(
                row.label, row.num_streams, row.buffer_minutes,
                row.predicted_hit, row.realized_hit,
                "yes" if row.meets_target else "NO",
            )

    factors = (0.5, 0.75, 1.5, 2.0) if not fast else (0.5, 2.0)
    emit("duration scale errors (sized wrong, evaluated true)",
         analysis.duration_scaling(factors))
    emit(
        "operation-mix errors",
        analysis.mix_alternatives(
            {
                "ff-heavy (0.6/0.2/0.2)": VCRMix(0.6, 0.2, 0.2),
                "pause-only (0/0/1)": VCRMix(0.0, 0.0, 1.0),
            }
        ),
    )
    emit(
        "family errors at the same mean",
        analysis.family_alternatives(
            {
                "exponential(8)": ExponentialDuration(8.0),
                "deterministic(8)": DeterministicDuration(8.0),
            }
        ),
    )
    result.add_note(
        "scale errors barely move the decision (the hit sets cover a "
        "near-scale-free fraction of duration space); family and mix errors "
        "are what a measurement campaign must get right"
    )
    return result


# ----------------------------------------------------------------------
# A7: heterogeneous viewer populations.
# ----------------------------------------------------------------------
def run_ablation_population(fast: bool = False) -> ExperimentResult:
    """Operation-weighted vs headcount-weighted population hit probability.

    A 25% "surfer" segment (short think times, long scans) mixed with a 75%
    "passive" segment: because surfers issue most of the VCR operations, the
    population P(hit) must weight classes by their *operation* shares —
    corrected for the position drift their own operations cause — not by
    headcount.  The table sweeps the buffer level; the reserve column prices
    the blended Erlang load.
    """
    from repro.core.parameters import SystemConfiguration
    from repro.sizing.population import PopulationModel, ViewerClass

    length = 120.0
    population = PopulationModel(
        length,
        [
            ViewerClass(
                "surfer", weight=1.0, mix=VCRMix(0.5, 0.3, 0.2),
                durations=GammaDuration(2.0, 6.0), mean_think_time=5.0,
            ),
            ViewerClass(
                "passive", weight=3.0, mix=VCRMix(0.05, 0.05, 0.9),
                durations=ExponentialDuration(3.0), mean_think_time=30.0,
            ),
        ],
    )
    result = ExperimentResult(
        experiment_id="ablation-population",
        title="Extension: heterogeneous viewer classes (25% surfers / 75% passive)",
    )
    shares = result.add_table(
        Table(
            caption="class structure",
            headers=("class", "session_share", "ops_per_session", "operation_share"),
        )
    )
    for cls in population.classes:
        shares.add_row(
            cls.name,
            population.session_share(cls.name),
            population.expected_operations_per_session(cls.name),
            population.operation_share(cls.name),
        )
    table = result.add_table(
        Table(
            caption="population P(hit) and shared VCR reserve (1% denial, "
            "lambda=0.6/min) along B = 120 − n",
            headers=("n", "B", "P(hit) op-weighted", "P(hit) headcount",
                     "surfer P(hit)", "passive P(hit)", "reserve"),
        )
    )
    counts = (20, 60, 100) if fast else (20, 40, 60, 80, 100)
    for n in counts:
        config = SystemConfiguration(length, n, length - n * 1.0)
        breakdowns = population.class_breakdowns(config)
        plan = population.plan_reserve(config, total_arrival_rate=0.6)
        table.add_row(
            n,
            length - n,
            population.hit_probability(config),
            population.headcount_weighted_hit(config),
            breakdowns["surfer"].p_hit,
            breakdowns["passive"].p_hit,
            plan.reserve_streams,
        )
    result.add_note(
        "surfers are 25% of sessions but ~57% of operations (their own scans "
        "shorten their sessions below the naive l/think estimate of 67%); "
        "weighting by headcount misprices the blend wherever the class hit "
        "probabilities diverge"
    )
    return result
