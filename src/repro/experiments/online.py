"""Extension experiment: static plan vs the online control plane.

The paper sizes ``(B_i, n_i)`` once, offline, from statistics "obtained
while the movie is displayed" — and then trusts them.  This experiment asks
what that trust costs when the workload moves mid-run, and what the
:mod:`repro.runtime` control plane buys back:

* **static** — the offline allocation runs untouched, and admissions are the
  seed server's first-come-first-served policy: any free stream goes to
  whoever asks, including a long-tail title that pins it for 100 minutes;
* **adaptive** — the same server wires a :class:`~repro.runtime.telemetry.TelemetryHub`
  into its observer hooks, a :class:`~repro.runtime.controller.CapacityController`
  ticks in the background (drift-gated re-fit → re-plan → actuate), and a
  :class:`~repro.runtime.admission.RuntimeAdmissionGate` screens arrivals
  against the deployed plan plus the Erlang VCR reserve.

Mid-run the workload shifts: popularity mass migrates from the popular head
to the long tail, and the popular viewers' VCR mix turns pause-heavy with
much longer operations.  Under the static plan the tail sessions soak up the
shared pool, so batch restarts starve and phase-1 VCR requests are denied;
the control plane refuses exactly those tail admissions that would invade
the plan's streams and the reserve, keeping the promised service alive.

Post-shift report, both arms on the same trace (identical seeds/shift):

* ``vcr_denied_rate`` — denied-admission rate for phase-1 VCR service
  (lower is better);
* ``phase1_streams`` — time-averaged streams actually *held* by phase-1 VCR
  service (higher is better: a starved pool denies the operation outright,
  so static's phase-1 occupancy collapses along with its service);
* supporting columns: starved restarts, resume stalls, tail rejections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.hitmodel import VCRMix
from repro.distributions import ExponentialDuration, UniformDuration
from repro.experiments.reporting import ExperimentResult, Table
from repro.runtime.actuator import PlanActuator
from repro.runtime.admission import RuntimeAdmissionGate
from repro.runtime.controller import CapacityController, ControllerPolicy, MovieSlot
from repro.runtime.telemetry import TelemetryHub
from repro.sizing.feasible import MovieSizingSpec
from repro.sizing.planner import SystemSizer
from repro.sizing.reservation import VCRLoadModel, min_servers_for_blocking
from repro.vod.buffer import BufferPool
from repro.vod.movie import Movie, MovieCatalog
from repro.vod.server import ServerMetricsReport, ServerWorkload, VODServer
from repro.vod.vcr import VCRBehavior

__all__ = ["OnlineControlOutcome", "run_online_arms", "run_online_control"]

_POPULAR = ((0, "hot", 120.0, 2.0), (1, "warm", 120.0, 2.0))
_TAIL_COUNT = 4
_TAIL_LENGTH = 100.0
_STREAM_BUDGET = 40
_HEADROOM = 12            # free streams beyond the plan: the tail's playground
_ARRIVAL_RATE = 1.0
_TICK_MINUTES = 20.0


@dataclass(frozen=True)
class OnlineControlOutcome:
    """Both arms' post-shift reports plus control-plane diagnostics."""

    static: ServerMetricsReport
    adaptive: ServerMetricsReport
    controller_counters: dict[str, int]
    gate_denied_tail: int
    deltas_applied: int


def _catalog() -> MovieCatalog:
    movies = [
        Movie(movie_id, name, length, popularity=share)
        for (movie_id, name, length, _), share in zip(_POPULAR, (0.55, 0.35))
    ]
    movies += [
        Movie(10 + i, f"tail-{i}", _TAIL_LENGTH, popularity=0.1 / _TAIL_COUNT)
        for i in range(_TAIL_COUNT)
    ]
    return MovieCatalog(movies, popular_count=len(_POPULAR))


def _shifted_popularities() -> dict[int, float]:
    """After the shift, over half the request mass lands on the tail."""
    shifted = {0: 0.20, 1: 0.25}
    shifted.update({10 + i: 0.55 / _TAIL_COUNT for i in range(_TAIL_COUNT)})
    return shifted


def _offline_behavior() -> VCRBehavior:
    """What the offline sizing assumed the viewers do."""
    return VCRBehavior.uniform_duration_model(
        ExponentialDuration(8.0), VCRMix.paper_figure7d(), mean_think_time=12.0
    )


def _live_behavior() -> VCRBehavior:
    """What the viewers actually do before the shift."""
    return VCRBehavior.paper_figure7(mean_think_time=12.0)


def _shifted_behavior() -> VCRBehavior:
    """Post-shift: pause-heavy mix with much longer operations."""
    return VCRBehavior.uniform_duration_model(
        UniformDuration(15.0, 30.0),
        VCRMix(p_ff=0.1, p_rw=0.1, p_pause=0.8),
        mean_think_time=12.0,
    )


def _offline_plan():
    """The Example-1-style offline sizing under the assumed behaviour."""
    behavior = _offline_behavior()
    specs = [
        MovieSizingSpec(
            name=name,
            length=length,
            max_wait=max_wait,
            durations=dict(behavior.durations),
            p_star=0.5,
            mix=behavior.mix,
        )
        for _, name, length, max_wait in _POPULAR
    ]
    result = SystemSizer(specs).solve(_STREAM_BUDGET).result
    plan = result.as_configuration_map(
        {name: movie_id for movie_id, name, _, _ in _POPULAR}
    )
    # The Erlang-B VCR reserve the offline plan implies for the live rates.
    load = sum(
        VCRLoadModel(
            model=spec.build_model(),
            config=plan[movie_id],
            viewer_arrival_rate=_ARRIVAL_RATE * share,
            mean_think_time=12.0,
        ).offered_load()
        for (movie_id, _, _, _), spec, share in zip(_POPULAR, specs, (0.55, 0.35))
    )
    reserve = min_servers_for_blocking(load, 0.05)
    return plan, reserve


def _run_arm(
    adaptive: bool,
    shift_at: float,
    settle: float,
    horizon: float,
    warmup: float,
) -> tuple[ServerMetricsReport, dict[str, int], int, int]:
    plan, reserve = _offline_plan()
    catalog = _catalog()
    workload = ServerWorkload(
        arrival_rate=_ARRIVAL_RATE, horizon=horizon, warmup=warmup, seed=20260805
    )
    total_buffer = sum(config.buffer_minutes for config in plan.values())

    hub = TelemetryHub(half_life_minutes=240.0)
    gate = None
    if adaptive:
        gate = RuntimeAdmissionGate()
        gate.update(
            sum(config.num_partitions for config in plan.values()),
            reserve,
            set(plan),
        )
    server = VODServer(
        catalog,
        plan,
        num_streams=sum(config.num_partitions for config in plan.values()) + _HEADROOM,
        buffer_pool=BufferPool.for_minutes(total_buffer + 60.0),
        behavior=_live_behavior(),
        workload=workload,
        observers=(hub,) if adaptive else (),
        gate=gate,
    )
    controller = actuator = None
    if adaptive:
        slots = [
            MovieSlot(movie_id=movie_id, name=name, length=length, max_wait=max_wait)
            for movie_id, name, length, max_wait in _POPULAR
        ]
        controller = CapacityController(
            slots,
            hub,
            policy=ControllerPolicy(
                stream_budget=_STREAM_BUDGET,
                cooldown_minutes=_TICK_MINUTES,
                min_improvement=0.0,
                blocking_target=0.05,
            ),
            initial_behaviors={
                movie_id: _offline_behavior() for movie_id, _, _, _ in _POPULAR
            },
            initial_plan=plan,
        )
        actuator = PlanActuator(server, gate=gate)

    server.start()
    shifted = reset_done = False
    now = 0.0
    while now < horizon:
        now = server.step(min(now + _TICK_MINUTES, horizon))
        if not shifted and now >= shift_at:
            # The mid-run workload shift, identical in both arms.
            catalog.set_popularities(_shifted_popularities())
            for movie_id, _, _, _ in _POPULAR:
                server.set_behavior(movie_id, _shifted_behavior())
            shifted = True
        if not reset_done and now >= shift_at + settle:
            # Post-shift measurement window starts here.
            server.metrics.reset_all(server.env.now)
            reset_done = True
        if controller is not None and now >= warmup:
            delta = controller.tick(now)
            if delta is not None:
                actuator.apply(delta)
    report = server.report()
    counters = controller.counters() if controller else {}
    denied_tail = gate.denied_tail if gate else 0
    applied = actuator.deltas_applied if actuator else 0
    return report, counters, denied_tail, applied


def run_online_arms(fast: bool = False) -> OnlineControlOutcome:
    """Run both arms on the identical shifted trace; returns raw outcomes.

    Split out from :func:`run_online_control` so the integration test can
    assert on the reports directly without re-parsing a table.
    """
    horizon = 900.0 if fast else 1500.0
    shift_at = 450.0 if fast else 750.0
    settle = 60.0
    warmup = 150.0
    static, _, _, _ = _run_arm(False, shift_at, settle, horizon, warmup)
    adaptive, counters, denied_tail, applied = _run_arm(
        True, shift_at, settle, horizon, warmup
    )
    return OnlineControlOutcome(
        static=static,
        adaptive=adaptive,
        controller_counters=counters,
        gate_denied_tail=denied_tail,
        deltas_applied=applied,
    )


def run_online_control(fast: bool = False) -> ExperimentResult:
    """Static offline plan vs the runtime control plane under a mid-run shift."""
    outcome = run_online_arms(fast)
    result = ExperimentResult(
        experiment_id="online-control",
        title="Online control plane vs static plan under a popularity/mix shift",
    )
    table = result.add_table(
        Table(
            caption="post-shift window only; identical arrivals, shift and seeds",
            headers=(
                "arm", "vcr_denied_rate", "phase1_streams", "restarts_starved",
                "resume_stalls", "hit_rate", "tail_rejected",
            ),
        )
    )
    for name, report in (("static", outcome.static), ("adaptive", outcome.adaptive)):
        table.add_row(
            name,
            report.vcr_denial_rate,
            round(report.mean_streams_vcr + report.mean_streams_miss_hold, 2),
            report.restarts_starved,
            report.resume_stalled,
            report.hit_rate if not math.isnan(report.hit_rate) else 0.0,
            report.rejected_unpopular,
        )
    counters = outcome.controller_counters
    result.add_note(
        "phase1_streams is the time-averaged stream count actually held by "
        "VCR service (phase 1 + phase-2 holds): when the pool is starved the "
        "operation is denied outright, so LOW occupancy here means service "
        "was refused, not that it was cheap; the adaptive arm pays for the "
        "miss-holds it serves with some extra starved batch restarts"
    )
    result.add_note(
        f"control plane: {counters.get('ticks', 0)} ticks, "
        f"{counters.get('deltas_emitted', 0)} deltas emitted, "
        f"{outcome.deltas_applied} applied, "
        f"{outcome.gate_denied_tail} tail admissions vetoed by the gate"
    )
    return result
