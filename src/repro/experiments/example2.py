"""Example 2: deriving the cost constants from hardware prices.

The paper's arithmetic: a minute of 4 Mb/s MPEG-2 occupies
``60 s * 4 Mb/s / 8 = 30 MB``; at $25/MB that is ``C_b = $750`` per
buffer-minute.  A $700 disk sustaining 5 MB/s carries
``5 MB/s / (4 Mb/s / 8) = 10`` streams, so ``C_n = $70`` per stream; the
ratio is ``φ = 750 / 70 ≈ 10.7`` ("approximately 11 times as expensive").
The experiment reproduces the constants and prices the Example-1 system.
"""

from __future__ import annotations

from repro.experiments.example1 import paper_example1_specs
from repro.experiments.reporting import ExperimentResult, Table
from repro.sizing.cost import CostModel
from repro.sizing.planner import SystemSizer
from repro.vod.disk import DiskModel

__all__ = ["run_example2"]

PAPER_C_B = 750.0
PAPER_C_N = 70.0


def run_example2(fast: bool = False) -> ExperimentResult:
    """Reproduce the Example-2 constants and the priced system."""
    disk = DiskModel.paper_example2()
    cost_model = CostModel.from_hardware(
        disk=disk, bitrate_mbps=4.0, memory_cost_per_mb=25.0
    )
    result = ExperimentResult(
        experiment_id="example2",
        title="Example 2: cost constants from 1997 hardware prices",
    )
    constants = result.add_table(
        Table(
            caption="derived constants vs paper",
            headers=("constant", "ours", "paper"),
        )
    )
    constants.add_row("C_b ($/buffer-minute)", cost_model.cost_per_buffer_minute, PAPER_C_B)
    constants.add_row("C_n ($/stream)", cost_model.cost_per_stream, PAPER_C_N)
    constants.add_row("phi = C_b/C_n", cost_model.phi, "~11")
    constants.add_row("streams per disk", disk.streams_supported(4.0), 10)

    sizer = SystemSizer(paper_example1_specs(), cost_model=cost_model)
    report = sizer.solve()
    priced = result.add_table(
        Table(
            caption="Example-1 system priced at these constants",
            headers=("quantity", "value"),
        )
    )
    priced.add_row("total streams", report.result.total_streams)
    priced.add_row("total buffer (min)", report.result.total_buffer_minutes)
    priced.add_row("system cost ($)", round(report.total_cost))
    result.add_note(
        "at 1997 prices memory dominates (phi ~ 11), so Figure 9(e)'s optimum "
        "sits at the maximum feasible stream count — reproduced by figure9"
    )
    return result
