"""Experiment harness: regenerate every figure and table of the paper.

Each module reproduces one artefact of the evaluation and returns an
:class:`~repro.experiments.reporting.ExperimentResult` that renders the same
rows/series the paper reports:

======== =============================================================
id       artefact
======== =============================================================
figure7a Fig. 7(a) — model vs simulation, fast-forward only
figure7b Fig. 7(b) — model vs simulation, rewind only
figure7c Fig. 7(c) — model vs simulation, pause only
figure7d Fig. 7(d) — model vs simulation, mixed VCR workload
figure8  Fig. 8 — feasible (B, n) pairs per movie, 5-minute steps
figure9  Fig. 9 — system cost vs streams for φ ∈ {3, 4, 6, 10, 11, 16}
example1 Example 1 — optimal allocation for the three-movie system
example2 Example 2 — hardware-derived cost constants
ablation-model          paper equations vs interval engine
ablation-server         allocation policies on the full server
ablation-distributions  hit sensitivity to the duration family
======== =============================================================

Use :func:`repro.experiments.registry.run_experiment` or the CLI
(``repro-vod run <id>``).
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)
from repro.experiments.reporting import ExperimentResult, Table

__all__ = [
    "EXPERIMENTS",
    "available_experiments",
    "run_experiment",
    "ExperimentResult",
    "Table",
]
