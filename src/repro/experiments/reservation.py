"""Extension experiment: VCR stream-reserve sizing vs hit probability.

The paper's footnote 3 argues that a low hit probability exhausts the
resources reserved for VCR service.  This experiment quantifies the claim
with the Erlang-loss layer: for one movie at a fixed wait target, sweep the
buffer (hence ``P(hit)``) along the Eq.-(2) line and size the stream reserve
needed to keep the VCR denial probability at 1%.  The punchline column is
the *total* stream bill (playback + reserve): buffering pays for itself
twice — once in playback streams saved, once in reserve streams saved.
"""

from __future__ import annotations

from repro.core.hitmodel import HitProbabilityModel, VCRMix
from repro.distributions.gamma import GammaDuration
from repro.experiments.reporting import ExperimentResult, Table
from repro.sizing.reservation import VCRLoadModel

__all__ = ["run_reservation"]


def run_reservation(fast: bool = False) -> ExperimentResult:
    """Reserve sizing across the buffering spectrum."""
    length = 120.0
    wait = 1.0
    arrival_rate = 0.5
    think = 15.0
    blocking_target = 0.01
    model = HitProbabilityModel(
        length, GammaDuration.paper_figure7(), mix=VCRMix.paper_figure7d()
    )
    partition_counts = (115, 100, 80, 60, 40, 20) if not fast else (115, 60, 20)

    result = ExperimentResult(
        experiment_id="ablation-reservation",
        title=(
            "Extension: VCR stream reserve (1% denial target) vs hit "
            f"probability — l={length:g}, w={wait:g}, lambda={arrival_rate:g}/min"
        ),
    )
    table = result.add_table(
        Table(
            caption="along B = l − n·w: more buffer -> higher P(hit) -> "
            "shorter holds -> smaller reserve",
            headers=(
                "n_playback", "B_minutes", "P(hit)", "mean_hold_min",
                "offered_load", "reserve", "total_streams",
            ),
        )
    )
    rows = []
    for n in partition_counts:
        buffer_minutes = length - n * wait
        if buffer_minutes < 0.0:
            continue
        config = model.configuration(n, buffer_minutes)
        load_model = VCRLoadModel(
            model, config, viewer_arrival_rate=arrival_rate, mean_think_time=think
        )
        plan = load_model.plan(blocking_target=blocking_target)
        rows.append((n, buffer_minutes, plan))
        table.add_row(
            n,
            buffer_minutes,
            plan.hit_probability,
            plan.mean_hold_minutes,
            plan.offered_load,
            plan.reserve_streams,
            n + plan.reserve_streams,
        )
    least_buffered = rows[0][2]   # largest n -> smallest B on the Eq.-(2) line
    most_buffered = rows[-1][2]
    result.add_note(
        f"reserve shrinks from {least_buffered.reserve_streams} streams at "
        f"P(hit)={least_buffered.hit_probability:.3f} to "
        f"{most_buffered.reserve_streams} at "
        f"P(hit)={most_buffered.hit_probability:.3f} — footnote 3 of the "
        "paper, quantified"
    )
    result.add_note(
        "Erlang-B is provably insensitive to the hold-time distribution, and "
        "the server simulation confirms the predictions are conservative "
        "(tests/integration/test_phase2_validation.py)"
    )
    return result
