"""Figure 7: analytical model versus simulation.

Workload (paper Section 4): movie of ``l = 120`` minutes, Poisson arrivals
with mean interarrival 2 minutes, VCR durations from the skewed gamma with
mean 8 (shape 2, scale 4), ``R_FF = R_RW = 3 R_PB``.  Panels (a)–(c) issue a
single operation type; panel (d) mixes them with
``P_FF = 0.2, P_RW = 0.2, P_PAU = 0.6``.  Each curve fixes a maximum wait
``w`` and sweeps the number of partitions ``n`` (the buffer follows from
Eq. 2: ``B = l − n·w``).

The paper does not print its ``w`` values; we sweep
``w ∈ {0.25, 0.5, 1.0}`` minutes, which brackets the waits it uses in
Example 1.  The reproduction target is the *relationship*: simulation tracks
the model closely, with the model slightly over-estimating FF/PAU at small
``n`` and under-estimating RW (the boundary conventions of Section 4).
"""

from __future__ import annotations

from repro.core.hitmodel import HitProbabilityModel, VCRMix
from repro.core.vcrop import VCROperation
from repro.distributions.gamma import GammaDuration
from repro.exceptions import ConfigurationError
from repro.experiments.charts import ascii_chart
from repro.experiments.reporting import ExperimentResult, Table
from repro.simulation.hit_simulator import SimulationSettings
from repro.simulation.runner import compare_model_and_simulation

__all__ = ["run_figure7", "PANEL_OPERATIONS", "paper_figure7_model"]

PANEL_OPERATIONS: dict[str, VCROperation | None] = {
    "a": VCROperation.FAST_FORWARD,
    "b": VCROperation.REWIND,
    "c": VCROperation.PAUSE,
    "d": None,  # the mixed workload
}

#: Sweep values (minutes) for the maximum wait; see module docstring.
DEFAULT_WAITS = (0.25, 0.5, 1.0)
DEFAULT_PARTITIONS = (10, 20, 30, 45, 60, 80, 100)
FAST_PARTITIONS = (10, 30, 60)


def paper_figure7_model() -> HitProbabilityModel:
    """The Figure-7 movie: l=120, gamma(2,4) durations, mix (0.2,0.2,0.6)."""
    return HitProbabilityModel(
        120.0, GammaDuration.paper_figure7(), mix=VCRMix.paper_figure7d()
    )


def run_figure7(panel: str, fast: bool = False) -> ExperimentResult:
    """Reproduce one panel of Figure 7.

    ``fast`` shrinks the grid and the simulated horizon for benchmark/CI use;
    the full setting matches the fidelity of the paper's plots.
    """
    if panel not in PANEL_OPERATIONS:
        raise ConfigurationError(
            f"panel must be one of {sorted(PANEL_OPERATIONS)}, got {panel!r}"
        )
    operation = PANEL_OPERATIONS[panel]
    model = paper_figure7_model()
    settings = SimulationSettings(
        arrival_rate=0.5,
        horizon=900.0 if fast else 2400.0,
        warmup=180.0 if fast else 400.0,
    )
    replications = 2 if fast else 4
    waits = DEFAULT_WAITS[1:2] if fast else DEFAULT_WAITS
    partitions = FAST_PARTITIONS if fast else DEFAULT_PARTITIONS

    label = operation.value if operation else "FF/RW/PAU mix (0.2/0.2/0.6)"
    result = ExperimentResult(
        experiment_id=f"figure7{panel}",
        title=f"Figure 7({panel}): P(hit) vs n, {label}; model vs simulation",
    )
    for wait in waits:
        table = result.add_table(
            Table(
                caption=f"w = {wait:g} min (B = 120 − {wait:g}·n)",
                headers=("n", "B_minutes", "model", "simulated", "ci95", "abs_err"),
            )
        )
        points = compare_model_and_simulation(
            model,
            partition_counts=list(partitions),
            max_wait=wait,
            settings=settings,
            replications=replications,
            operation=operation,
        )
        for point in points:
            table.add_row(
                point.num_partitions,
                point.config.buffer_minutes,
                point.model_hit,
                point.simulated_hit,
                point.simulated_ci,
                point.absolute_error,
            )
        errors = [p.absolute_error for p in points]
        result.add_chart(
            ascii_chart(
                {
                    "model": [(p.num_partitions, p.model_hit) for p in points],
                    "simulated": [(p.num_partitions, p.simulated_hit) for p in points],
                },
                title=f"P(hit) vs n at w = {wait:g} min",
                y_label="P(hit)",
                x_label="number of partitions n",
            )
        )
        result.add_note(
            f"w={wait:g}: max |model − sim| = {max(errors):.4f}, "
            f"mean = {sum(errors) / len(errors):.4f} over {len(points)} points"
        )
    if operation is VCROperation.REWIND:
        result.add_note(
            "expected (paper Section 4): the model under-estimates RW hits — "
            "rewinding to minute 0 is booked a miss analytically but can "
            "re-enroll in the simulator"
        )
    if operation in (VCROperation.FAST_FORWARD, VCROperation.PAUSE):
        result.add_note(
            "expected (paper Section 4): slight model over-estimation at small n "
            "from the uniform-position approximation (simulated viewers cluster "
            "at partition leading edges)"
        )
    return result
