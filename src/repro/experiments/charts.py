"""Plain-text line charts for experiment output.

The paper's evaluation is figures; the tables carry the exact numbers but a
terminal rendering of the curve shapes makes the reproduction reviewable at
a glance.  :func:`ascii_chart` plots one or more named series on a shared
character grid with axis annotations; the experiment modules attach charts
alongside their tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["ascii_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named ``(x, y)`` series as a character-grid line chart.

    Each series gets its own marker; later series overwrite earlier ones on
    collisions.  Axes are annotated with the data ranges.  Returns a string
    ending in a newline.
    """
    if not series:
        raise ConfigurationError("ascii_chart needs at least one series")
    if width < 8 or height < 4:
        raise ConfigurationError(f"chart must be at least 8x4, got {width}x{height}")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigurationError("ascii_chart needs at least one data point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if not all(map(math.isfinite, (x_lo, x_hi, y_lo, y_hi))):
        raise ConfigurationError("ascii_chart requires finite data")
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    x_annotation = (
        " " * (margin + 1)
        + f"{x_lo:.4g}".ljust(width - 10)
        + f"{x_hi:.4g}".rjust(10)
    )
    lines.append(x_annotation)
    if x_label:
        lines.append(" " * (margin + 1) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines) + "\n"
