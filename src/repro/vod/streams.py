"""I/O stream pool with purpose tagging.

The server's streams are one fungible pool (the disk array doesn't care what
a stream carries), but the experiments need to know *why* each stream is held
— steady playback of a partition, a phase-1 VCR operation, a dedicated
stream pinned by a resume miss, or an unpopular-title session.  The pool
therefore tags grants and keeps time-weighted occupancy per purpose, which is
exactly the evidence the A2 ablation uses to show the value of pre-allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ResourceError
from repro.sim.engine import Environment
from repro.sim.metrics import MetricsRegistry
from repro.sim.resources import Resource, ResourceRequest

__all__ = ["StreamPurpose", "StreamGrant", "StreamPool"]


class StreamPurpose(enum.Enum):
    """Why a stream is being held."""

    PLAYBACK = "playback"          # one per partition, held for the movie length
    VCR = "vcr"                    # phase 1: serving a FF/RW operation
    MISS_HOLD = "miss_hold"        # phase 2: resume missed, stream still pinned
    UNPOPULAR = "unpopular"        # dedicated stream for a long-tail title


@dataclass
class StreamGrant:
    """A granted stream plus its accounting tag."""

    request: ResourceRequest
    purpose: StreamPurpose
    granted_at: float

    def retag(self, pool: "StreamPool", purpose: StreamPurpose) -> None:
        """Change the accounting purpose without releasing the stream.

        Used when a phase-1 VCR stream becomes a phase-2 miss hold: the same
        physical stream keeps flowing, only the books change.
        """
        pool._retag(self, purpose)


class StreamPool:
    """Counted stream pool with per-purpose occupancy metrics.

    When a trace writer is attached, every acquisition and release emits a
    ``stream_acquire``/``stream_release`` event carrying the purpose and the
    pool-wide occupancy after the transition; with ``tracer=None`` the hot
    path costs one branch.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self._env = env
        self._resource = Resource(env, capacity, name="io-streams")
        self._metrics = metrics or MetricsRegistry()
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._held: dict[StreamPurpose, int] = {purpose: 0 for purpose in StreamPurpose}
        for purpose in StreamPurpose:
            self._metrics.time_weighted(f"streams.{purpose.value}", now=env.now)
        self._metrics.time_weighted("streams.total", now=env.now)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total streams in the pool."""
        return self._resource.capacity

    @property
    def in_use(self) -> int:
        """Streams currently granted."""
        return self._resource.in_use

    @property
    def available(self) -> int:
        """Streams free to grant right now."""
        return self._resource.available

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry recording per-purpose occupancy."""
        return self._metrics

    def held_for(self, purpose: StreamPurpose) -> int:
        """Streams currently held for one purpose."""
        return self._held[purpose]

    # ------------------------------------------------------------------
    # Acquisition.
    # ------------------------------------------------------------------
    def try_acquire(self, purpose: StreamPurpose) -> StreamGrant | None:
        """Non-blocking acquisition; ``None`` when the pool is exhausted."""
        request = self._resource.try_request()
        if request is None:
            return None
        grant = StreamGrant(request=request, purpose=purpose, granted_at=self._env.now)
        self._held[purpose] += 1
        self._account()
        if self._tracer is not None:
            self._tracer.emit(
                "stream_acquire",
                self._env.now,
                purpose=purpose.value,
                in_use=self._resource.in_use,
            )
        return grant

    def acquire(self, purpose: StreamPurpose) -> ResourceRequest:
        """Blocking acquisition: yield the returned request in a process.

        After the request fires, call :meth:`attach` to obtain the tagged
        grant (two steps because the wait happens inside the caller's
        process).
        """
        return self._resource.request()

    def attach(self, request: ResourceRequest, purpose: StreamPurpose) -> StreamGrant:
        """Tag a granted request obtained via :meth:`acquire`."""
        if not request.granted:
            raise ResourceError("attach() on a request that has not been granted")
        grant = StreamGrant(request=request, purpose=purpose, granted_at=self._env.now)
        self._held[purpose] += 1
        self._account()
        if self._tracer is not None:
            self._tracer.emit(
                "stream_acquire",
                self._env.now,
                purpose=purpose.value,
                in_use=self._resource.in_use,
            )
        return grant

    def release(self, grant: StreamGrant) -> None:
        """Return the stream and record the hold duration."""
        self._resource.release(grant.request)
        self._held[grant.purpose] -= 1
        if self._held[grant.purpose] < 0:
            raise ResourceError(f"negative hold count for {grant.purpose}")
        held = self._env.now - grant.granted_at
        self._metrics.tally(f"hold_minutes.{grant.purpose.value}").push(held)
        self._account()
        if self._tracer is not None:
            self._tracer.emit(
                "stream_release",
                self._env.now,
                purpose=grant.purpose.value,
                in_use=self._resource.in_use,
                held_minutes=held,
            )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _retag(self, grant: StreamGrant, purpose: StreamPurpose) -> None:
        self._held[grant.purpose] -= 1
        self._held[purpose] += 1
        self._metrics.tally(f"hold_minutes.{grant.purpose.value}").push(
            self._env.now - grant.granted_at
        )
        grant.purpose = purpose
        grant.granted_at = self._env.now
        self._account()

    def _account(self) -> None:
        now = self._env.now
        for purpose, count in self._held.items():
            self._metrics.time_weighted(f"streams.{purpose.value}", now=now).update(now, count)
        self._metrics.time_weighted("streams.total", now=now).update(now, self._resource.in_use)
