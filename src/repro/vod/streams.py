"""I/O stream pool with purpose tagging.

The server's streams are one fungible pool (the disk array doesn't care what
a stream carries), but the experiments need to know *why* each stream is held
— steady playback of a partition, a phase-1 VCR operation, a dedicated
stream pinned by a resume miss, or an unpopular-title session.  The pool
therefore tags grants and keeps time-weighted occupancy per purpose, which is
exactly the evidence the A2 ablation uses to show the value of pre-allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ResourceError, StreamAccountingError
from repro.sim.engine import Environment
from repro.sim.metrics import MetricsRegistry
from repro.sim.resources import Resource, ResourceRequest

__all__ = ["StreamPurpose", "StreamGrant", "StreamPool", "REVOCATION_ORDER"]


class StreamPurpose(enum.Enum):
    """Why a stream is being held."""

    PLAYBACK = "playback"          # one per partition, held for the movie length
    VCR = "vcr"                    # phase 1: serving a FF/RW operation
    MISS_HOLD = "miss_hold"        # phase 2: resume missed, stream still pinned
    UNPOPULAR = "unpopular"        # dedicated stream for a long-tail title


#: Default order in which revocation sheds load: interactive extras go
#: before anything a whole batch of viewers depends on.
REVOCATION_ORDER: tuple[StreamPurpose, ...] = (
    StreamPurpose.VCR,
    StreamPurpose.MISS_HOLD,
    StreamPurpose.UNPOPULAR,
    StreamPurpose.PLAYBACK,
)


@dataclass
class StreamGrant:
    """A granted stream plus its accounting tag."""

    request: ResourceRequest
    purpose: StreamPurpose
    granted_at: float
    #: Monotone issue number; orders grants deterministically for revocation.
    token: int = -1
    #: Set when the fault layer reclaimed the stream out from under the
    #: holder; every later release/retag of this grant is an accounting error.
    revoked: bool = False

    def retag(self, pool: "StreamPool", purpose: StreamPurpose) -> None:
        """Change the accounting purpose without releasing the stream.

        Used when a phase-1 VCR stream becomes a phase-2 miss hold: the same
        physical stream keeps flowing, only the books change.
        """
        pool._retag(self, purpose)


class StreamPool:
    """Counted stream pool with per-purpose occupancy metrics.

    When a trace writer is attached, every acquisition and release emits a
    ``stream_acquire``/``stream_release`` event carrying the purpose and the
    pool-wide occupancy after the transition; with ``tracer=None`` the hot
    path costs one branch.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self._env = env
        self._resource = Resource(env, capacity, name="io-streams")
        self._metrics = metrics or MetricsRegistry()
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._held: dict[StreamPurpose, int] = {purpose: 0 for purpose in StreamPurpose}
        self._live: dict[int, StreamGrant] = {}
        self._next_token = 0
        for purpose in StreamPurpose:
            self._metrics.time_weighted(f"streams.{purpose.value}", now=env.now)
        self._metrics.time_weighted("streams.total", now=env.now)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Total streams in the pool."""
        return self._resource.capacity

    @property
    def in_use(self) -> int:
        """Streams currently granted."""
        return self._resource.in_use

    @property
    def available(self) -> int:
        """Streams free to grant right now."""
        return self._resource.available

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry recording per-purpose occupancy."""
        return self._metrics

    def held_for(self, purpose: StreamPurpose) -> int:
        """Streams currently held for one purpose."""
        return self._held[purpose]

    # ------------------------------------------------------------------
    # Acquisition.
    # ------------------------------------------------------------------
    def try_acquire(self, purpose: StreamPurpose) -> StreamGrant | None:
        """Non-blocking acquisition; ``None`` when the pool is exhausted."""
        request = self._resource.try_request()
        if request is None:
            return None
        return self._issue(request, purpose)

    def acquire(self, purpose: StreamPurpose) -> ResourceRequest:
        """Blocking acquisition: yield the returned request in a process.

        After the request fires, call :meth:`attach` to obtain the tagged
        grant (two steps because the wait happens inside the caller's
        process).
        """
        return self._resource.request()

    def attach(self, request: ResourceRequest, purpose: StreamPurpose) -> StreamGrant:
        """Tag a granted request obtained via :meth:`acquire`."""
        if not request.granted:
            raise ResourceError("attach() on a request that has not been granted")
        return self._issue(request, purpose)

    def release(self, grant: StreamGrant) -> None:
        """Return the stream and record the hold duration.

        Raises :class:`~repro.exceptions.StreamAccountingError` on a revoked
        grant, a double release, or a grant this pool never issued.
        """
        self._check_live(grant, "release")
        del self._live[grant.token]
        self._resource.release(grant.request)
        self._held[grant.purpose] -= 1
        if self._held[grant.purpose] < 0:
            raise ResourceError(f"negative hold count for {grant.purpose}")
        held = self._env.now - grant.granted_at
        self._metrics.tally(f"hold_minutes.{grant.purpose.value}").push(held)
        self._account()
        if self._tracer is not None:
            self._tracer.emit(
                "stream_release",
                self._env.now,
                purpose=grant.purpose.value,
                in_use=self._resource.in_use,
                held_minutes=held,
            )

    # ------------------------------------------------------------------
    # Fault layer.
    # ------------------------------------------------------------------
    def resize(self, capacity: int) -> None:
        """Change the pool size (growth wakes waiters, shrink is lazy)."""
        self._resource.resize(capacity)
        self._account()

    def revoke(
        self,
        count: int,
        order: tuple[StreamPurpose, ...] = REVOCATION_ORDER,
    ) -> list[StreamGrant]:
        """Forcibly reclaim up to ``count`` live grants, least critical first.

        Victims are chosen deterministically: by ``order`` across purposes,
        oldest issue token first within a purpose.  Each victim's stream unit
        returns to the pool immediately and the grant is marked ``revoked``;
        the holder discovers this at its next touch (or via the degradation
        manager's interrupt) and must not release the grant again.  Returns
        the revoked grants so callers can notify the holders.
        """
        if count < 0:
            raise StreamAccountingError(f"cannot revoke {count} streams")
        victims: list[StreamGrant] = []
        by_purpose: dict[StreamPurpose, list[StreamGrant]] = {p: [] for p in order}
        for grant in self._live.values():  # insertion == token order
            if grant.purpose in by_purpose:
                by_purpose[grant.purpose].append(grant)
        for purpose in order:
            for grant in by_purpose[purpose]:
                if len(victims) >= count:
                    break
                victims.append(grant)
        for grant in victims:
            del self._live[grant.token]
            grant.revoked = True
            self._resource.release(grant.request)
            self._held[grant.purpose] -= 1
            held = self._env.now - grant.granted_at
            self._metrics.tally(f"hold_minutes.{grant.purpose.value}").push(held)
            self._metrics.counter("streams.revoked").increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "stream_release",
                    self._env.now,
                    purpose=grant.purpose.value,
                    in_use=self._resource.in_use,
                    held_minutes=held,
                )
        self._account()
        return victims

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _issue(self, request: ResourceRequest, purpose: StreamPurpose) -> StreamGrant:
        grant = StreamGrant(
            request=request,
            purpose=purpose,
            granted_at=self._env.now,
            token=self._next_token,
        )
        self._next_token += 1
        self._live[grant.token] = grant
        self._held[purpose] += 1
        self._account()
        if self._tracer is not None:
            self._tracer.emit(
                "stream_acquire",
                self._env.now,
                purpose=purpose.value,
                in_use=self._resource.in_use,
            )
        return grant

    def _check_live(self, grant: StreamGrant, verb: str) -> None:
        if grant.revoked:
            raise StreamAccountingError(
                f"{verb} of a revoked {grant.purpose.value} grant "
                f"(token {grant.token}): the fault layer already reclaimed it"
            )
        live = self._live.get(grant.token)
        if live is not grant:
            raise StreamAccountingError(
                f"{verb} of a grant this pool does not hold "
                f"(token {grant.token}): double {verb} or foreign grant"
            )

    def _retag(self, grant: StreamGrant, purpose: StreamPurpose) -> None:
        self._check_live(grant, "retag")
        self._held[grant.purpose] -= 1
        self._held[purpose] += 1
        self._metrics.tally(f"hold_minutes.{grant.purpose.value}").push(
            self._env.now - grant.granted_at
        )
        grant.purpose = purpose
        grant.granted_at = self._env.now
        self._account()

    def _account(self) -> None:
        now = self._env.now
        for purpose, count in self._held.items():
            self._metrics.time_weighted(f"streams.{purpose.value}", now=now).update(now, count)
        self._metrics.time_weighted("streams.total", now=now).update(now, self._resource.in_use)
