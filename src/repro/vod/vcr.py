"""Viewer VCR behaviour: when operations happen, which, and for how long.

Bundles the three ingredients the paper treats as measurable user statistics
(Section 3.1.4): the think-time process between interactions, the operation
mix ``(P_FF, P_RW, P_PAU)``, and a duration distribution per operation.
Used by both the hit simulator and the full server simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hitmodel import VCRMix
from repro.core.vcrop import VCROperation
from repro.distributions.base import DurationDistribution
from repro.distributions.exponential import ExponentialDuration
from repro.distributions.gamma import GammaDuration
from repro.distributions.truncated import truncate
from repro.exceptions import ConfigurationError

__all__ = ["VCRBehavior"]


@dataclass(frozen=True)
class VCRBehavior:
    """Complete interactive-behaviour specification for one movie's viewers."""

    mix: VCRMix
    durations: dict[VCROperation, DurationDistribution]
    mean_think_time: float = 15.0

    def __post_init__(self) -> None:
        if self.mean_think_time <= 0:
            raise ConfigurationError(
                f"mean_think_time must be positive, got {self.mean_think_time}"
            )
        missing = [op for op in VCROperation if op not in self.durations]
        if missing:
            raise ConfigurationError(f"missing duration distributions for {missing}")

    @classmethod
    def uniform_duration_model(
        cls,
        duration: DurationDistribution,
        mix: VCRMix | None = None,
        mean_think_time: float = 15.0,
    ) -> "VCRBehavior":
        """One duration distribution shared by all operations (Figure 7 style)."""
        return cls(
            mix=mix or VCRMix.paper_figure7d(),
            durations={op: duration for op in VCROperation},
            mean_think_time=mean_think_time,
        )

    @classmethod
    def paper_figure7(cls, mean_think_time: float = 15.0) -> "VCRBehavior":
        """Figure 7(d): gamma(2, 4) durations, mix (0.2, 0.2, 0.6)."""
        return cls.uniform_duration_model(
            GammaDuration.paper_figure7(), VCRMix.paper_figure7d(), mean_think_time
        )

    @classmethod
    def calm(cls, mean_duration: float = 3.0, mean_think_time: float = 40.0) -> "VCRBehavior":
        """A low-interaction profile: rare, short operations."""
        return cls.uniform_duration_model(
            ExponentialDuration(mean_duration),
            VCRMix(p_ff=0.3, p_rw=0.2, p_pause=0.5),
            mean_think_time,
        )

    def truncated_to(self, movie_length: float) -> "VCRBehavior":
        """Durations conditioned onto ``[0, l]`` (the model's convention)."""
        return VCRBehavior(
            mix=self.mix,
            durations={
                op: truncate(dist, movie_length) for op, dist in self.durations.items()
            },
            mean_think_time=self.mean_think_time,
        )

    # ------------------------------------------------------------------
    # Sampling.
    # ------------------------------------------------------------------
    def sample_think_time(self, rng: np.random.Generator) -> float:
        """Draw a playback interval before the next operation."""
        return float(rng.exponential(self.mean_think_time))

    def sample_operation(self, rng: np.random.Generator) -> VCROperation:
        """Draw an operation type from the mix."""
        u = float(rng.uniform())
        cumulative = 0.0
        for op in VCROperation:
            cumulative += self.mix.probability_of(op)
            if u <= cumulative:
                return op
        return VCROperation.PAUSE

    def sample_duration(self, operation: VCROperation, rng: np.random.Generator) -> float:
        """Draw a duration for the given operation."""
        return float(self.durations[operation].sample(rng))
