"""Buffer-space accounting for the server.

The server owns ``B_s`` minutes' worth of buffer (Section 5's notation).  The
sizing layer assigns a slice ``B_i`` to each popular movie; this module
tracks those reservations, enforces the capacity constraint
``Σ B_i <= B_s``, and converts between minutes of video and megabytes for
cost reporting.

The per-partition *contents* are not materialised — the window kinematics of
:mod:`repro.simulation.kinematics` describe what each partition holds at any
instant — so the pool is pure accounting, mirroring how the paper treats
buffer space as a scalar resource.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ResourceError
from repro.vod.movie import Movie

__all__ = ["BufferReservation", "BufferPool"]


@dataclass(frozen=True)
class BufferReservation:
    """An accepted buffer claim of ``minutes`` for ``movie``."""

    movie: Movie
    minutes: float

    @property
    def megabytes(self) -> float:
        """The reservation's size in megabytes."""
        return self.movie.buffer_megabytes(self.minutes)


class BufferPool:
    """Reservable pool of buffer space measured in minutes of video.

    Minutes are bitrate-dependent in megabyte terms; the pool accounts in
    megabytes internally so catalogs with mixed bitrates are handled
    correctly, while the public API speaks minutes per movie.
    """

    def __init__(self, capacity_megabytes: float) -> None:
        if capacity_megabytes < 0:
            raise ResourceError(f"capacity must be >= 0, got {capacity_megabytes}")
        self._capacity_mb = float(capacity_megabytes)
        self._reserved_mb = 0.0
        self._reservations: list[BufferReservation] = []

    @classmethod
    def for_minutes(cls, minutes: float, bitrate_mbps: float = 4.0) -> "BufferPool":
        """Pool sized to hold ``minutes`` of video at the given bitrate."""
        megabytes = minutes * 60.0 * bitrate_mbps / 8.0
        return cls(megabytes)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def capacity_megabytes(self) -> float:
        """Total pool size in megabytes."""
        return self._capacity_mb

    @property
    def reserved_megabytes(self) -> float:
        """Megabytes currently reserved."""
        return self._reserved_mb

    @property
    def available_megabytes(self) -> float:
        """Megabytes free to reserve."""
        return self._capacity_mb - self._reserved_mb

    @property
    def reservations(self) -> tuple[BufferReservation, ...]:
        """Snapshot of the live reservations."""
        return tuple(self._reservations)

    def reserved_minutes_for(self, movie_id: int) -> float:
        """Minutes reserved for one movie id."""
        return sum(r.minutes for r in self._reservations if r.movie.movie_id == movie_id)

    # ------------------------------------------------------------------
    # Reservation lifecycle.
    # ------------------------------------------------------------------
    def can_reserve(self, movie: Movie, minutes: float) -> bool:
        """True when the claim would fit the remaining capacity."""
        return movie.buffer_megabytes(minutes) <= self.available_megabytes + 1e-9

    def reserve(self, movie: Movie, minutes: float) -> BufferReservation:
        """Claim ``minutes`` of buffer for ``movie`` or raise ResourceError."""
        if minutes < 0:
            raise ResourceError(f"cannot reserve negative minutes ({minutes})")
        needed = movie.buffer_megabytes(minutes)
        if needed > self.available_megabytes + 1e-9:
            raise ResourceError(
                f"buffer pool exhausted: need {needed:.1f} MB for {movie.title!r}, "
                f"only {self.available_megabytes:.1f} MB free"
            )
        reservation = BufferReservation(movie=movie, minutes=minutes)
        self._reserved_mb += needed
        self._reservations.append(reservation)
        return reservation

    def release(self, reservation: BufferReservation) -> None:
        """Return a reservation to the pool."""
        try:
            self._reservations.remove(reservation)
        except ValueError:
            raise ResourceError("releasing a reservation this pool never granted") from None
        self._reserved_mb -= reservation.megabytes
        if self._reserved_mb < -1e-9:
            raise ResourceError("buffer accounting went negative (double release?)")
        self._reserved_mb = max(0.0, self._reserved_mb)

    def utilization(self) -> float:
        """Reserved fraction of the pool (0 for an empty pool)."""
        if self._capacity_mb == 0:
            return 0.0
        return self._reserved_mb / self._capacity_mb

    def resize(self, capacity_megabytes: float) -> None:
        """Change the pool size (the fault layer's buffer-pressure lever).

        Shrinking below the reserved total is allowed — existing
        reservations survive (their partitions are evicted separately by the
        degradation path) but new reservations fail until space frees, so
        ``utilization`` can transiently exceed 1.
        """
        if capacity_megabytes < 0:
            raise ResourceError(f"capacity must be >= 0, got {capacity_megabytes}")
        self._capacity_mb = float(capacity_megabytes)
