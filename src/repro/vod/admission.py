"""Admission control: route arriving requests to a service path.

Popular titles go to their :class:`~repro.vod.partitioning.MovieService`
(batching + buffering); long-tail titles need a dedicated stream for the
whole session and are rejected when the pool is dry.  The controller also
enforces the buffer reservations implied by the allocation at construction
time, so an allocation that overcommits either resource fails fast instead of
misbehaving mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.parameters import SystemConfiguration
from repro.exceptions import ResourceError, SimulationError
from repro.sim.engine import Environment
from repro.sim.metrics import MetricsRegistry
from repro.vod.buffer import BufferPool, BufferReservation
from repro.vod.movie import Movie, MovieCatalog
from repro.vod.partitioning import MovieService
from repro.vod.streams import StreamGrant, StreamPool, StreamPurpose

__all__ = ["AdmissionDecision", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of routing one arriving request."""

    admitted: bool
    service: MovieService | None = None          # set for popular titles
    dedicated_grant: StreamGrant | None = None   # set for admitted tail titles
    reason: str = ""


class AdmissionController:
    """Routes requests and owns the popular movies' service objects."""

    def __init__(
        self,
        env: Environment,
        catalog: MovieCatalog,
        allocation: Mapping[int, SystemConfiguration],
        streams: StreamPool,
        buffers: BufferPool,
        metrics: MetricsRegistry,
        tracer=None,
    ) -> None:
        self._env = env
        self._catalog = catalog
        self._streams = streams
        self._buffers = buffers
        self._metrics = metrics
        self._services: dict[int, MovieService] = {}
        self._reservations: dict[int, BufferReservation] = {}
        for movie in catalog.popular:
            if movie.movie_id not in allocation:
                raise SimulationError(
                    f"popular movie {movie.title!r} has no allocation; the sizing "
                    "layer must cover every popular title"
                )
            config = allocation[movie.movie_id]
            # Reserve the movie's buffer slice up front — this is precisely
            # the "pre-allocation" of the paper's title.  Fails fast when the
            # allocation overcommits B_s.
            try:
                self._reservations[movie.movie_id] = buffers.reserve(
                    movie, config.buffer_minutes
                )
            except ResourceError as exc:
                raise SimulationError(
                    f"allocation overcommits the buffer pool at {movie.title!r}: {exc}"
                ) from exc
            self._services[movie.movie_id] = MovieService(
                env, movie, config, streams, metrics, tracer=tracer
            )

    def start(self) -> None:
        """Start every popular movie's restart schedule."""
        for service in self._services.values():
            service.start()

    def service_for(self, movie_id: int) -> MovieService:
        """The MovieService of a popular movie id."""
        try:
            return self._services[movie_id]
        except KeyError:
            raise SimulationError(f"movie {movie_id} is not served by partitioning") from None

    @property
    def services(self) -> tuple[MovieService, ...]:
        """Every popular movie's service object."""
        return tuple(self._services.values())

    def current_allocation(self) -> dict[int, SystemConfiguration]:
        """The deployed ``{movie_id: configuration}`` map."""
        return {mid: service.config for mid, service in self._services.items()}

    def reconfigure_movie(self, movie_id: int, config: SystemConfiguration) -> None:
        """Move one movie's buffer reservation and service to a new config.

        The buffer delta is applied transactionally: the old reservation is
        released only after the new one is granted for a grow, and a shrink
        can never fail.  A grow that does not fit raises
        :class:`ResourceError` and leaves the old configuration untouched —
        the actuator applies shrinks first so the freed space funds the
        grows.
        """
        service = self.service_for(movie_id)
        old = self._reservations[movie_id]
        if config.buffer_minutes != old.minutes:
            movie = service.movie
            if config.buffer_minutes < old.minutes:
                self._buffers.release(old)
                self._reservations[movie_id] = self._buffers.reserve(
                    movie, config.buffer_minutes
                )
            else:
                grown = self._buffers.reserve(
                    movie, config.buffer_minutes - old.minutes
                )
                # Both slices belong to the movie; fold them into one record.
                self._buffers.release(old)
                self._buffers.release(grown)
                self._reservations[movie_id] = self._buffers.reserve(
                    movie, config.buffer_minutes
                )
        service.reconfigure(config)

    def admit(self, movie: Movie) -> AdmissionDecision:
        """Route one arriving request."""
        if self._catalog.is_popular(movie.movie_id):
            self._metrics.counter("admitted_popular").increment()
            return AdmissionDecision(
                admitted=True,
                service=self._services[movie.movie_id],
                reason="popular: batched/buffered path",
            )
        grant = self._streams.try_acquire(StreamPurpose.UNPOPULAR)
        if grant is None:
            self._metrics.counter("rejected_unpopular").increment()
            return AdmissionDecision(admitted=False, reason="no stream for tail title")
        self._metrics.counter("admitted_unpopular").increment()
        return AdmissionDecision(
            admitted=True, dedicated_grant=grant, reason="tail: dedicated stream"
        )
