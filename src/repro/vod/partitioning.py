"""Per-movie static-partitioned service: restarts, live streams, enrollment.

A :class:`MovieService` owns the machinery the paper's Section 2 describes
for one popular movie: restart an I/O stream every ``l/n`` minutes, keep a
``B/n``-minute buffer partition per stream, let viewers enroll while the
window covers position 0, and answer hit queries against the *actual* set of
live streams.

Unlike the idealised kinematics used by the hit simulator (which assume a
perfectly periodic restart lattice), the service tracks real restart times:
if the stream pool is exhausted a restart is *starved* and skipped, which is
exactly the failure mode that bad sizing produces and the end-to-end
benchmarks measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.parameters import SystemConfiguration
from repro.exceptions import SimulationError
from repro.sim.engine import Environment, Event
from repro.sim.metrics import MetricsRegistry
from repro.vod.movie import Movie
from repro.vod.streams import StreamGrant, StreamPool, StreamPurpose

__all__ = ["LiveStream", "MovieService"]

_TOL = 1e-9


@dataclass
class LiveStream:
    """One restart of the movie: an I/O stream plus its buffer partition.

    The I/O grant is released when the playhead reaches the end of the
    movie (``grant`` becomes ``None``), but the partition's buffered tail
    stays available for ``span`` more minutes for the viewers still inside
    it — the window semantics the paper's ``delta`` reserve implements.
    """

    start_time: float
    grant: StreamGrant | None

    def playhead(self, now: float, playback_rate: float) -> float:
        """The stream's movie position at wall time ``now``."""
        return (now - self.start_time) * playback_rate


class MovieService:
    """Runs the restart schedule and partition bookkeeping for one movie."""

    def __init__(
        self,
        env: Environment,
        movie: Movie,
        config: SystemConfiguration,
        streams: StreamPool,
        metrics: MetricsRegistry,
        tracer=None,
    ) -> None:
        if abs(config.movie_length - movie.length) > 1e-6:
            raise SimulationError(
                f"configuration length {config.movie_length} does not match "
                f"movie {movie.title!r} length {movie.length}"
            )
        self._env = env
        self.movie = movie
        self.config = config
        self._streams = streams
        self._metrics = metrics
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._live: list[LiveStream] = []
        self._restart_signal: Event = env.event()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the periodic restart process (idempotent)."""
        if self._started:
            return
        self._started = True
        self._env.process(self._restart_loop(), name=f"restarts:{self.movie.title}")

    def _restart_loop(self) -> Generator[Event, None, None]:
        while True:
            self._attempt_restart()
            # Re-read the spacing every cycle so a reconfiguration takes
            # effect at the next restart boundary, never mid-window.
            yield self._env.timeout(self.config.partition_spacing)

    def _attempt_restart(self) -> None:
        grant = self._streams.try_acquire(StreamPurpose.PLAYBACK)
        if grant is None:
            self._metrics.counter(f"restarts_starved.{self.movie.movie_id}").increment()
            self._metrics.counter("restarts_starved").increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "batch_restart",
                    self._env.now,
                    movie=self.movie.movie_id,
                    starved=True,
                )
            return
        stream = LiveStream(start_time=self._env.now, grant=grant)
        self._live.append(stream)
        self._metrics.counter("restarts").increment()
        if self._tracer is not None:
            self._tracer.emit(
                "batch_restart",
                self._env.now,
                movie=self.movie.movie_id,
                starved=False,
            )
        self._env.process(self._stream_end(stream), name=f"stream:{self.movie.title}")
        # Wake every viewer queued for this restart.
        signal, self._restart_signal = self._restart_signal, self._env.event()
        signal.succeed(stream)

    def _stream_end(self, stream: LiveStream) -> Generator[Event, None, None]:
        playback = self.config.rates.playback
        # The I/O stream ends when the playhead reaches the end of the movie.
        yield self._env.timeout(self.movie.length / playback)
        grant, stream.grant = stream.grant, None
        if grant is not None and not grant.revoked:
            self._streams.release(grant)
        # The buffered tail serves the partition's remaining viewers for
        # `span` more minutes before the window disappears.
        if self.config.partition_span > 0.0:
            yield self._env.timeout(self.config.partition_span / playback)
        # The fault layer may have collapsed the partition while we slept.
        if stream in self._live:
            self._live.remove(stream)

    def reconfigure(self, config: SystemConfiguration) -> None:
        """Adopt a new ``(B, n)`` for this movie's service.

        Semantics of a live switch: the restart *spacing* is picked up at the
        next restart boundary (the loop re-reads it each cycle — a window in
        flight is never cut), while the partition *span* applies to window
        queries immediately, which models the buffer slice being regrown or
        shrunk for all partitions at once.  Streams already live keep running
        to their natural end, so the stream population converges to the new
        ``n`` within one movie length.
        """
        if abs(config.movie_length - self.movie.length) > 1e-6:
            raise SimulationError(
                f"reconfiguration length {config.movie_length} does not match "
                f"movie {self.movie.title!r} length {self.movie.length}"
            )
        if config != self.config:
            self.config = config
            self._metrics.counter(f"reconfigured.{self.movie.movie_id}").increment()
            self._metrics.counter("reconfigured").increment()

    # ------------------------------------------------------------------
    # Fault layer.
    # ------------------------------------------------------------------
    def reap_revoked(self) -> int:
        """Drop partitions whose playback grant the fault layer revoked.

        The window disappears immediately — viewers inside it miss on their
        next resume, which is the degradation the fault model wants (the
        stream is gone; the buffered tail cannot be refilled).  Returns the
        number of partitions reaped.
        """
        reaped = 0
        for stream in list(self._live):
            if stream.grant is not None and stream.grant.revoked:
                stream.grant = None
                self._live.remove(stream)
                reaped += 1
        if reaped:
            self._metrics.counter("partitions.collapsed").increment(reaped)
            self._metrics.counter(
                f"partitions.collapsed.{self.movie.movie_id}"
            ).increment(reaped)
        return reaped

    def collapse(self, stream: LiveStream) -> None:
        """Evict one live partition, returning its stream to the pool.

        Used by buffer-pressure eviction and the ``collapse_partition``
        shedding policy; the grant is released properly (unless the fault
        layer already revoked it), so the pool's books stay balanced.
        """
        if stream not in self._live:
            raise SimulationError(
                f"collapse of a partition {self.movie.title!r} is not serving"
            )
        grant, stream.grant = stream.grant, None
        if grant is not None and not grant.revoked:
            self._streams.release(grant)
        self._live.remove(stream)
        self._metrics.counter("partitions.collapsed").increment()
        self._metrics.counter(
            f"partitions.collapsed.{self.movie.movie_id}"
        ).increment()

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def live_streams(self) -> tuple[LiveStream, ...]:
        """Snapshot of the currently live restarts."""
        return tuple(self._live)

    def find_window(self, position: float) -> Optional[LiveStream]:
        """The youngest partition whose window covers ``position``.

        The window is ``[playhead − span, min(playhead, l)]`` — the leading
        edge saturates at the end of the movie while the buffered tail is
        drained by the partition's last viewers.
        """
        now = self._env.now
        playback = self.config.rates.playback
        span = self.config.partition_span
        best: Optional[LiveStream] = None
        for stream in self._live:
            playhead = stream.playhead(now, playback)
            leading = min(playhead, self.movie.length)
            if position - _TOL <= leading and playhead - span <= position + _TOL:
                if best is None or stream.start_time > best.start_time:
                    best = stream
        return best

    def enrollment_open(self) -> bool:
        """Can a new arrival start reading position 0 from a partition now?"""
        return self.find_window(0.0) is not None

    def wait_for_restart(self) -> Event:
        """Event that fires at the next successful restart (type-1 queueing)."""
        return self._restart_signal

    def streams_in_use(self) -> int:
        """Partitions still holding an I/O grant (tail-draining ones don't)."""
        return sum(1 for stream in self._live if stream.grant is not None)
