"""Observer-hook dispatch shared by the server and its viewer processes.

Observers are duck-typed: any object implementing a subset of

* ``on_session_start(movie_id, length, now)``
* ``on_vcr(movie_id, operation, duration, now)``
* ``on_vcr_end(movie_id, operation, outcome, now)``
* ``on_playback(movie_id, minutes, now)``
* ``on_resume(movie_id, hit, now)``
* ``on_resume_detail(movie_id, hit, position, window_start, now)``
* ``on_session_end(movie_id, now)``

may be attached to a :class:`~repro.vod.server.VODServer`.  Missing hooks
are simply skipped (partial observers are part of the protocol).  A hook
that *raises*, however, must not be silently swallowed — nor allowed to
masquerade as a simulation failure: dispatch wraps the exception in a
:class:`~repro.exceptions.ObserverError` naming the observer and the hook,
with the original chained, and the server run stops there.  Observability
must never corrupt the books: the dispatch sites sit after the metrics for
the same transition were recorded, so a crashing observer cannot leave the
counters half-updated.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ObserverError

__all__ = ["notify_observers"]


def notify_observers(
    observers: Iterable[object], method: str, movie_id: int, *args, now: float
) -> None:
    """Invoke one hook on every observer that implements it.

    The hook is called as ``hook(movie_id, *args, now)``.  Observers without
    the hook are skipped; an observer whose hook raises aborts dispatch with
    an :class:`~repro.exceptions.ObserverError` chaining the original
    exception.
    """
    for observer in observers:
        hook = getattr(observer, method, None)
        if hook is None:
            continue
        try:
            hook(movie_id, *args, now)
        except ObserverError:
            # Nested dispatch (an observer driving its own observers) already
            # named the offender; don't bury it under another layer.
            raise
        except Exception as exc:
            raise ObserverError(
                f"observer {type(observer).__name__} raised in {method} "
                f"(movie {movie_id}, t={now:g}): {exc}"
            ) from exc
