"""Disk subsystem model: hardware specs to stream capacity and cost.

Example 2 of the paper prices the two resources: a 2 GB SCSI disk at $700
sustaining 5 MB/s, against $25/MB memory, with 4 Mb/s MPEG-2 video.  One disk
therefore sustains ``5 MB/s / (4 Mb/s / 8) = 10`` concurrent streams, and one
I/O stream costs $70 — the paper's ``C_n``.  This module encodes that
arithmetic so benchmark code never hand-computes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["DiskModel", "DiskArray"]


@dataclass(frozen=True)
class DiskModel:
    """A disk product: capacity, sustained transfer rate, unit cost."""

    capacity_gb: float = 2.0
    transfer_rate_mb_s: float = 5.0
    cost_dollars: float = 700.0

    def __post_init__(self) -> None:
        for name in ("capacity_gb", "transfer_rate_mb_s", "cost_dollars"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value > 0):
                raise ConfigurationError(f"{name} must be positive, got {value}")

    @classmethod
    def paper_example2(cls) -> "DiskModel":
        """The 2 GB / 5 MB/s / $700 SCSI disk of Example 2."""
        return cls()

    def degraded(self, factor: float) -> "DiskModel":
        """This disk running at ``factor`` of its nominal transfer rate.

        The fault layer's ``disk_degrade`` magnitude maps through this to a
        stream-capacity loss: ``degraded(f).streams_supported(r)`` is the
        capacity the injector resizes the pool to.
        """
        if not (math.isfinite(factor) and 0.0 < factor <= 1.0):
            raise ConfigurationError(
                f"degradation factor must be in (0, 1], got {factor}"
            )
        return DiskModel(
            capacity_gb=self.capacity_gb,
            transfer_rate_mb_s=self.transfer_rate_mb_s * factor,
            cost_dollars=self.cost_dollars,
        )

    def streams_supported(self, bitrate_mbps: float) -> int:
        """Concurrent streams of ``bitrate_mbps`` video one disk sustains."""
        if bitrate_mbps <= 0:
            raise ConfigurationError(f"bitrate must be positive, got {bitrate_mbps}")
        return int(self.transfer_rate_mb_s / (bitrate_mbps / 8.0))

    def cost_per_stream(self, bitrate_mbps: float) -> float:
        """Dollar cost of one I/O stream — the paper's ``C_n`` ($70)."""
        streams = self.streams_supported(bitrate_mbps)
        if streams < 1:
            raise ConfigurationError(
                f"disk at {self.transfer_rate_mb_s} MB/s cannot sustain even one "
                f"{bitrate_mbps} Mb/s stream"
            )
        return self.cost_dollars / streams

    def minutes_stored(self, bitrate_mbps: float) -> float:
        """Minutes of video of the given bitrate that fit on one disk."""
        if bitrate_mbps <= 0:
            raise ConfigurationError(f"bitrate must be positive, got {bitrate_mbps}")
        megabytes = self.capacity_gb * 1024.0
        return megabytes / (bitrate_mbps / 8.0) / 60.0


@dataclass(frozen=True)
class DiskArray:
    """A farm of identical disks — the server's I/O bandwidth supply."""

    disk: DiskModel
    num_disks: int

    def __post_init__(self) -> None:
        if self.num_disks < 1:
            raise ConfigurationError(f"array needs >= 1 disk, got {self.num_disks}")

    @classmethod
    def for_stream_budget(
        cls, disk: DiskModel, streams_needed: int, bitrate_mbps: float
    ) -> "DiskArray":
        """Smallest array of ``disk`` sustaining ``streams_needed`` streams."""
        if streams_needed < 1:
            raise ConfigurationError(f"streams_needed must be >= 1, got {streams_needed}")
        per_disk = disk.streams_supported(bitrate_mbps)
        if per_disk < 1:
            raise ConfigurationError("disk cannot sustain a single stream at this bitrate")
        return cls(disk=disk, num_disks=math.ceil(streams_needed / per_disk))

    def total_streams(self, bitrate_mbps: float) -> int:
        """Concurrent streams the whole array sustains."""
        return self.num_disks * self.disk.streams_supported(bitrate_mbps)

    @property
    def total_cost(self) -> float:
        """Dollar cost of the array."""
        return self.num_disks * self.disk.cost_dollars

    @property
    def total_capacity_gb(self) -> float:
        """Storage capacity of the array in GB."""
        return self.num_disks * self.disk.capacity_gb
