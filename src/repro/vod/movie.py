"""Movie catalog and popularity modelling.

VOD access patterns are classically skewed: a few popular titles receive most
requests.  The standard model — and the reason the paper restricts batching
and buffering to *popular* movies — is a Zipf distribution over the catalog.
:func:`zipf_popularities` generates the weights; :class:`MovieCatalog` splits
the catalog into the popular set (eligible for batching + buffering) and the
long tail (served by dedicated streams).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Movie", "MovieCatalog", "zipf_popularities"]


def zipf_popularities(count: int, skew: float = 0.271) -> np.ndarray:
    """Normalised Zipf-like popularity weights for ``count`` ranked movies.

    ``weight(rank) ∝ 1 / rank**(1 − skew)`` with ``skew = 0.271`` — the
    classic video-store fit used throughout the 1990s VOD literature
    (Dan, Sitaram & Shahabuddin 1994, the paper's batching reference).
    ``skew = 0`` is pure Zipf; larger values flatten the distribution.
    """
    if count < 1:
        raise ConfigurationError(f"catalog needs >= 1 movie, got {count}")
    if not 0.0 <= skew < 1.0:
        raise ConfigurationError(f"zipf skew must be in [0, 1), got {skew}")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = 1.0 / ranks ** (1.0 - skew)
    return weights / weights.sum()


@dataclass(frozen=True)
class Movie:
    """One title in the catalog.

    ``length`` is in minutes; ``bitrate_mbps`` matters only for translating
    buffer minutes into megabytes (Example 2 uses 4 Mb/s MPEG-2).
    """

    movie_id: int
    title: str
    length: float
    bitrate_mbps: float = 4.0
    popularity: float = 0.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError(f"movie length must be positive, got {self.length}")
        if self.bitrate_mbps <= 0:
            raise ConfigurationError(f"bitrate must be positive, got {self.bitrate_mbps}")
        if not 0.0 <= self.popularity <= 1.0:
            raise ConfigurationError(f"popularity must be in [0, 1], got {self.popularity}")

    def buffer_megabytes(self, minutes: float) -> float:
        """Megabytes needed to hold ``minutes`` of this movie (Example 2 math)."""
        if minutes < 0:
            raise ConfigurationError(f"buffer minutes must be >= 0, got {minutes}")
        return minutes * 60.0 * self.bitrate_mbps / 8.0


class MovieCatalog:
    """A ranked catalog with a popular head eligible for data sharing."""

    def __init__(self, movies: Sequence[Movie], popular_count: int | None = None) -> None:
        if not movies:
            raise ConfigurationError("catalog must contain at least one movie")
        ids = [m.movie_id for m in movies]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("movie ids must be unique")
        total = sum(m.popularity for m in movies)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ConfigurationError(f"popularities must sum to 1, got {total}")
        self._movies = tuple(sorted(movies, key=lambda m: m.popularity, reverse=True))
        if popular_count is None:
            popular_count = max(1, len(self._movies) // 10)
        if not 0 <= popular_count <= len(self._movies):
            raise ConfigurationError(
                f"popular_count must be in [0, {len(self._movies)}], got {popular_count}"
            )
        self._popular_count = popular_count
        self._by_id = {m.movie_id: m for m in self._movies}

    @classmethod
    def synthetic(
        cls,
        count: int,
        popular_count: int | None = None,
        skew: float = 0.271,
        length_minutes: float = 110.0,
        length_spread: float = 20.0,
        bitrate_mbps: float = 4.0,
        seed: int = 7,
    ) -> "MovieCatalog":
        """Generate a catalog with Zipf popularity and jittered lengths."""
        rng = np.random.Generator(np.random.PCG64(seed))
        weights = zipf_popularities(count, skew)
        movies = []
        for rank in range(count):
            jitter = float(rng.uniform(-length_spread, length_spread)) if length_spread else 0.0
            movies.append(
                Movie(
                    movie_id=rank,
                    title=f"movie-{rank:04d}",
                    length=max(30.0, length_minutes + jitter),
                    bitrate_mbps=bitrate_mbps,
                    popularity=float(weights[rank]),
                )
            )
        return cls(movies, popular_count=popular_count)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    @property
    def movies(self) -> tuple[Movie, ...]:
        """All titles, sorted by popularity."""
        return self._movies

    @property
    def popular(self) -> tuple[Movie, ...]:
        """The head of the ranking: batching + buffering candidates."""
        return self._movies[: self._popular_count]

    @property
    def unpopular(self) -> tuple[Movie, ...]:
        """The long tail: served by dedicated streams."""
        return self._movies[self._popular_count:]

    def get(self, movie_id: int) -> Movie:
        """Look up a movie by id (ConfigurationError if unknown)."""
        try:
            return self._by_id[movie_id]
        except KeyError:
            raise ConfigurationError(f"unknown movie id {movie_id}") from None

    def is_popular(self, movie_id: int) -> bool:
        """True when the id belongs to the popular head."""
        return any(m.movie_id == movie_id for m in self.popular)

    def popular_request_fraction(self) -> float:
        """Fraction of the request stream that targets the popular head."""
        return sum(m.popularity for m in self.popular)

    def set_popularities(self, popularity_by_id: dict[int, float]) -> None:
        """Replace the request-sampling weights mid-experiment.

        Models a popularity shift in the arrival stream: the weights change,
        the *membership* of the popular head does not — titles keep their
        ranks so the services and allocations attached to them stay valid
        (a real deployment re-ranks on a much slower timescale than the
        within-run shifts the control-plane experiments exercise).
        """
        unknown = set(popularity_by_id) - set(self._by_id)
        if unknown:
            raise ConfigurationError(f"unknown movie ids {sorted(unknown)}")
        updated = [
            dataclasses.replace(
                m, popularity=popularity_by_id.get(m.movie_id, m.popularity)
            )
            for m in self._movies
        ]
        total = sum(m.popularity for m in updated)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ConfigurationError(f"popularities must sum to 1, got {total}")
        self._movies = tuple(updated)
        self._by_id = {m.movie_id: m for m in self._movies}

    def sample(self, rng: np.random.Generator) -> Movie:
        """Draw a movie according to popularity."""
        weights = [m.popularity for m in self._movies]
        index = int(rng.choice(len(self._movies), p=weights))
        return self._movies[index]

    def __len__(self) -> int:
        return len(self._movies)

    def __iter__(self) -> Iterator[Movie]:
        return iter(self._movies)
