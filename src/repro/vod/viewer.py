"""The full-server viewer process: playback, VCR, phase-1/phase-2 resources.

This is the resource-contended version of the hit simulator's viewer.  The
life cycle (Section 2 of the paper):

1. *Arrival* — join an open enrollment window (type 2) or queue for the next
   restart (type 1).
2. *Playback* — read from the partition; no extra resources.
3. *VCR phase 1* — FF/RW need a dedicated stream from the shared pool for the
   duration of the operation (a blocked acquisition means the operation is
   denied and the viewer keeps watching — the experiments count these).
   PAU holds no stream (a frozen frame needs no I/O).
4. *Resume* — hit: release the phase-1 stream and rejoin a partition.  Miss:
   the stream is retagged as a phase-2 hold (for PAU a stream must be
   acquired now; if none is available the resume *stalls* until a partition
   sweeps past the viewer's position).
5. *Phase 2* — piggyback drift toward the nearest partition; on merge the
   stream is released, otherwise it stays pinned to the end of the session —
   precisely the resource drain the paper's pre-allocation model minimises.
"""

from __future__ import annotations

import math
from typing import Generator

from repro.core.vcrop import VCROperation
from repro.sim.engine import Environment, Event
from repro.sim.metrics import MetricsRegistry
from repro.vod.observers import notify_observers
from repro.vod.partitioning import MovieService
from repro.vod.piggyback import PiggybackPolicy
from repro.vod.streams import StreamGrant, StreamPool, StreamPurpose
from repro.vod.vcr import VCRBehavior

__all__ = ["PopularViewer"]


class PopularViewer:
    """One interactive session against a partitioned movie service."""

    def __init__(
        self,
        env: Environment,
        service: MovieService,
        behavior: VCRBehavior,
        streams: StreamPool,
        piggyback: PiggybackPolicy,
        metrics: MetricsRegistry,
        rng,
        warmup: float = 0.0,
        mean_patience: float | None = None,
        observers: tuple = (),
        degradation=None,
    ) -> None:
        self._env = env
        self._service = service
        self._behavior = behavior.truncated_to(service.movie.length)
        self._streams = streams
        self._piggyback = piggyback
        self._metrics = metrics
        self._rng = rng
        self._warmup = warmup
        self._mean_patience = mean_patience
        self._observers = tuple(observers)
        self._degradation = degradation
        self.position = 0.0
        self._op_counted = False

    def _notify(self, method: str, *args) -> None:
        """Fan an observation out to the attached observers (duck-typed)."""
        notify_observers(
            self._observers,
            method,
            self._service.movie.movie_id,
            *args,
            now=self._env.now,
        )

    # ------------------------------------------------------------------
    # Metric helpers (warm-up aware).
    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        if self._env.now >= self._warmup:
            self._metrics.counter(name).increment()

    def _tally(self, name: str, value: float) -> None:
        if self._env.now >= self._warmup:
            self._metrics.tally(name).push(value)

    # Per-operation outcomes (hit/miss/blocked/end-release/piggyback) resolve
    # *after* the operation's duration has elapsed.  Gating them on the
    # issue-time flag — not the resolution-time clock — keeps the books
    # balanced across the warm-up reset: an operation issued before warm-up
    # never counts as resolved after it, so ``resolved <= issued`` holds on
    # every sample path, not just the lucky ones.
    def _count_op(self, name: str) -> None:
        if self._op_counted:
            self._metrics.counter(name).increment()

    def _tally_op(self, name: str, value: float) -> None:
        if self._op_counted:
            self._metrics.tally(name).push(value)

    # ------------------------------------------------------------------
    # Fault handling.
    # ------------------------------------------------------------------
    def _survives_revocation(self) -> bool:
        """Resolve a revoked grant: degrade (True) or drop the session.

        With a degradation policy attached the viewer carries on without the
        stream — the resume becomes a miss/stall instead of a crash.  With no
        policy the session is dropped on the spot (still traced to a terminal
        ``session_end``), which is exactly the loss the chaos experiment's
        baseline arm measures.
        """
        if self._degradation is not None:
            self._count("viewers.degraded")
            self._degradation.session_degraded()
            return True
        self._count("viewers.dropped")
        self._notify("on_session_end")
        return False

    # ------------------------------------------------------------------
    # The process.
    # ------------------------------------------------------------------
    def process(self) -> Generator[Event, object, None]:
        """The viewer's generator: run it with ``env.process(...)``."""
        env = self._env
        service = self._service
        config = service.config
        rates = config.rates
        length = service.movie.length

        # --- Arrival / enrollment (type 1 vs type 2 viewers, Figure 1). ---
        if service.find_window(0.0) is not None:
            self._count("viewers.type2")
        else:
            self._count("viewers.type1")
            arrived = env.now
            restart = service.wait_for_restart()
            if self._mean_patience is not None:
                # Reneging: an impatient queued viewer defects if the next
                # restart does not come soon enough (the batching
                # literature's classic loss metric, Dan et al. 1994).
                patience = float(self._rng.exponential(self._mean_patience))
                outcome = yield env.any_of([restart, env.timeout(patience)])
                if restart not in outcome:
                    self._count("viewers.defected")
                    return
            else:
                yield restart
            self._tally("wait_minutes", env.now - arrived)
        self.position = 0.0
        self._count("viewers.started")

        while True:
            think = self._behavior.sample_think_time(self._rng)
            remaining_wall = (length - self.position) / rates.playback
            if think >= remaining_wall:
                yield env.timeout(remaining_wall)
                self._count("viewers.completed")
                self._notify("on_playback", remaining_wall)
                self._notify("on_session_end")
                return
            yield env.timeout(think)
            self.position += think * rates.playback
            self._notify("on_playback", think)

            operation = self._behavior.sample_operation(self._rng)
            duration = self._behavior.sample_duration(operation, self._rng)
            self._op_counted = env.now >= self._warmup
            self._count_op(f"vcr.issued.{operation.value}")
            self._notify("on_vcr", operation, duration)

            grant: StreamGrant | None = None
            if operation is VCROperation.PAUSE:
                yield env.timeout(duration)
            else:
                grant = self._streams.try_acquire(StreamPurpose.VCR)
                if grant is None:
                    # Phase-1 starvation: the operation is denied outright.
                    self._count_op("vcr.blocked")
                    self._notify("on_vcr_end", operation, "denied")
                    continue
                if operation is VCROperation.FAST_FORWARD:
                    if duration >= length - self.position:
                        yield env.timeout(
                            (length - self.position) / rates.fast_forward
                        )
                        if not grant.revoked:
                            self._streams.release(grant)
                        self._count_op("vcr.end_release")
                        self._count("viewers.completed")
                        self._notify("on_vcr_end", operation, "end_of_movie")
                        self._notify("on_session_end")
                        return
                    yield env.timeout(duration / rates.fast_forward)
                    self.position += duration
                else:
                    reach = min(duration, self.position)
                    yield env.timeout(reach / rates.rewind)
                    self.position -= reach
            self._notify("on_vcr_end", operation, "ok")

            # --- Resume: hit or miss. ---
            window = service.find_window(self.position)
            if window is not None:
                self._count_op("resume.hit")
                self._notify("on_resume", True)
                self._notify(
                    "on_resume_detail", True, self.position, window.start_time
                )
                # A revoked grant is already gone from the pool; the resume
                # itself still hits (rejoining a partition needs no stream).
                if grant is not None and not grant.revoked:
                    self._streams.release(grant)
                continue

            self._count_op("resume.miss")
            self._notify("on_resume", False)
            self._notify("on_resume_detail", False, self.position, None)
            if grant is not None and grant.revoked:
                # The phase-1 stream was reclaimed mid-operation and the
                # resume missed: nothing left to retag.
                if not self._survives_revocation():
                    return
                grant = None
            if grant is not None:
                grant.retag(self._streams, StreamPurpose.MISS_HOLD)
            else:
                grant = self._streams.try_acquire(StreamPurpose.MISS_HOLD)
                if grant is None:
                    # No stream to resume on: stall until a partition window
                    # sweeps over the viewer's position.
                    self._count_op("resume.stalled")
                    stalled_at = env.now
                    yield from self._wait_until_covered()
                    self._tally_op("stall_minutes", env.now - stalled_at)
                    continue

            # --- Phase 2: piggyback drift on the dedicated stream. ---
            survived = yield from self._phase2_drift(grant)
            if not survived:
                # The hold stream was revoked mid-drift.
                if not self._survives_revocation():
                    return
                stalled_at = env.now
                yield from self._wait_until_covered()
                self._tally_op("stall_minutes", env.now - stalled_at)
                continue
            if self.position >= length - 1e-9:
                self._count("viewers.completed")
                self._notify("on_session_end")
                return

    # ------------------------------------------------------------------
    # Phase-2 helpers.
    # ------------------------------------------------------------------
    def _phase2_drift(self, grant: StreamGrant) -> Generator[Event, object, bool]:
        """Drift on the hold stream; False when it was revoked mid-drift."""
        env = self._env
        service = self._service
        rates = service.config.rates
        length = service.movie.length
        gap_ahead, gap_behind = self._live_gaps()
        minutes_to_end = (length - self.position) / rates.playback
        plan = self._piggyback.plan_from_gaps(
            gap_ahead, gap_behind, minutes_to_end, playback_rate=rates.playback
        )
        hold = plan.hold_minutes
        yield env.timeout(hold)
        if grant.revoked:
            self._count_op("piggyback.aborted")
            return False
        epsilon = self._piggyback.rate_tolerance
        if plan.merges:
            factor = 1.0 + epsilon if plan.direction == "forward" else 1.0 - epsilon
            self.position = min(length, self.position + hold * rates.playback * factor)
            self._count_op("piggyback.merged")
        else:
            self.position = length
            self._count_op("piggyback.ran_to_end")
        self._tally_op("phase2_hold_minutes", hold)
        self._streams.release(grant)
        return True

    def _live_gaps(self) -> tuple[float | None, float | None]:
        """Gaps to the nearest partitions, measured on the *actual* streams."""
        now = self._env.now
        playback = self._service.config.rates.playback
        span = self._service.config.partition_span
        length = self._service.movie.length
        ahead: float | None = None
        behind: float | None = None
        for stream in self._service.live_streams:
            playhead = stream.playhead(now, playback)
            if playhead < 0.0:
                continue
            leading = min(playhead, length)
            trailing = max(0.0, playhead - span)
            if trailing > self.position:
                gap = trailing - self.position
                if ahead is None or gap < ahead:
                    ahead = gap
            if leading < self.position:
                gap = self.position - leading
                if behind is None or gap < behind:
                    behind = gap
        return ahead, behind

    def _wait_until_covered(self) -> Generator[Event, object, None]:
        """Block (no resources held) until a partition covers the position."""
        env = self._env
        service = self._service
        playback = service.config.rates.playback
        while True:
            if service.find_window(self.position) is not None:
                return
            _, behind = self._live_gaps()
            if behind is not None:
                # The nearest stream behind sweeps forward to the position.
                yield env.timeout(behind / playback)
                if service.find_window(self.position) is not None:
                    return
            else:
                # Nothing behind yet: wait for the next successful restart.
                yield service.wait_for_restart()
                restart_gap = self.position / playback
                if restart_gap > 0.0:
                    yield env.timeout(restart_gap)
