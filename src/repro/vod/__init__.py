"""Full VOD-server simulation substrate.

The analytical model sizes a server; this subpackage *is* that server, in
simulation: a movie catalog with Zipf popularity, a disk subsystem that turns
hardware specs into stream capacity, pooled I/O streams and buffer space,
batching and static-partitioned scheduling policies, viewers with VCR
behaviour, admission control, and piggybacking as the phase-2 fallback for
resume misses.  The end-to-end benchmarks (A2 in DESIGN.md) use it to show
what the paper argues qualitatively: allocations chosen by the hit model keep
far fewer streams pinned by resumed viewers than naive allocations.
"""

from repro.vod.buffer import BufferPool
from repro.vod.disk import DiskArray, DiskModel
from repro.vod.movie import Movie, MovieCatalog, zipf_popularities
from repro.vod.piggyback import PiggybackPolicy
from repro.vod.server import ServerMetricsReport, ServerWorkload, VODServer
from repro.vod.streams import StreamPool
from repro.vod.vcr import VCRBehavior

__all__ = [
    "Movie",
    "MovieCatalog",
    "zipf_popularities",
    "DiskModel",
    "DiskArray",
    "BufferPool",
    "StreamPool",
    "VCRBehavior",
    "PiggybackPolicy",
    "VODServer",
    "ServerWorkload",
    "ServerMetricsReport",
]
