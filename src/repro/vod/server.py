"""The assembled VOD server simulation.

Wires catalog, allocation, stream pool, buffer pool, admission control,
movie services and viewer processes into one runnable system, and reduces a
run to a :class:`ServerMetricsReport` — the quantities the end-to-end
benchmarks compare across allocation policies:

* resume hit rate (the paper's ``P(hit)`` realised under contention);
* VCR denial rate (phase-1 starvation);
* time-averaged streams pinned by phase-2 miss holds;
* unpopular-title rejection rate (the capacity the data-sharing techniques
  free up, Section 5's motivation);
* starved restarts (an allocation overcommitting playback streams).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Mapping

from repro.core.parameters import SystemConfiguration
from repro.exceptions import SimulationError
from repro.obs.adapters import TracingObserver
from repro.obs.log import get_logger
from repro.obs.spans import span
from repro.sim.engine import Environment, Event
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RandomStreams
from repro.vod.admission import AdmissionController
from repro.vod.buffer import BufferPool
from repro.vod.movie import MovieCatalog
from repro.vod.observers import notify_observers
from repro.vod.piggyback import PiggybackPolicy
from repro.vod.streams import StreamPool, StreamPurpose
from repro.vod.vcr import VCRBehavior
from repro.vod.viewer import PopularViewer

__all__ = ["ServerWorkload", "ServerMetricsReport", "VODServer"]

_log = get_logger("vod.server")


@dataclass(frozen=True)
class ServerWorkload:
    """Arrival process and run control for a server experiment."""

    arrival_rate: float            # total request arrivals per minute
    horizon: float = 1200.0
    warmup: float = 240.0
    seed: int = 424242
    mean_patience: float | None = None  # queued viewers renege after ~this (None: infinite patience)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise SimulationError(f"arrival_rate must be positive, got {self.arrival_rate}")
        if self.warmup < 0 or self.horizon <= self.warmup:
            raise SimulationError(
                f"need 0 <= warmup < horizon, got warmup={self.warmup}, "
                f"horizon={self.horizon}"
            )
        if self.mean_patience is not None and self.mean_patience <= 0:
            raise SimulationError(
                f"mean_patience must be positive or None, got {self.mean_patience}"
            )


@dataclass(frozen=True)
class ServerMetricsReport:
    """Headline outcomes of one server run."""

    hit_rate: float
    resume_hits: int
    resume_misses: int
    vcr_blocked: int
    vcr_issued: int
    resume_stalled: int
    piggyback_merged: int
    piggyback_ran_to_end: int
    restarts_starved: int
    rejected_unpopular: int
    admitted_unpopular: int
    mean_streams_playback: float
    mean_streams_vcr: float
    mean_streams_miss_hold: float
    mean_streams_unpopular: float
    mean_streams_total: float
    viewers_started: int
    viewers_completed: int
    viewers_defected: int
    mean_wait_minutes: float
    # Fault-layer outcomes (all zero on a fault-free run).
    viewers_dropped: int = 0
    viewers_degraded: int = 0
    faults_injected: int = 0
    streams_revoked: int = 0
    partitions_collapsed: int = 0

    @property
    def session_drop_rate(self) -> float:
        """Fraction of started sessions lost to revocations."""
        return self.viewers_dropped / self.viewers_started if self.viewers_started else 0.0

    @property
    def vcr_denial_rate(self) -> float:
        """Fraction of issued VCR operations denied a stream."""
        total = self.vcr_issued
        return self.vcr_blocked / total if total else 0.0

    @property
    def unpopular_rejection_rate(self) -> float:
        """Fraction of long-tail requests rejected."""
        total = self.rejected_unpopular + self.admitted_unpopular
        return self.rejected_unpopular / total if total else 0.0

    def summary_lines(self) -> list[str]:
        """Human-readable report block used by examples and the CLI."""
        return [
            f"resume hit rate          : {self.hit_rate:.4f} "
            f"({self.resume_hits} hits / {self.resume_misses} misses)",
            f"VCR operations issued    : {self.vcr_issued} "
            f"(denied: {self.vcr_blocked}, denial rate {self.vcr_denial_rate:.4f})",
            f"resume stalls            : {self.resume_stalled}",
            f"piggyback merges         : {self.piggyback_merged} "
            f"(ran to end: {self.piggyback_ran_to_end})",
            f"starved restarts         : {self.restarts_starved}",
            f"tail titles              : admitted {self.admitted_unpopular}, "
            f"rejected {self.rejected_unpopular} "
            f"(rejection rate {self.unpopular_rejection_rate:.4f})",
            f"mean streams in use      : total {self.mean_streams_total:.1f} "
            f"(playback {self.mean_streams_playback:.1f}, vcr {self.mean_streams_vcr:.1f}, "
            f"miss-hold {self.mean_streams_miss_hold:.1f}, "
            f"tail {self.mean_streams_unpopular:.1f})",
            f"viewers                  : started {self.viewers_started}, "
            f"completed {self.viewers_completed}, defected {self.viewers_defected}, "
            f"mean batching wait {self.mean_wait_minutes:.2f} min",
            f"faults                   : injected {self.faults_injected}, "
            f"streams revoked {self.streams_revoked}, "
            f"partitions collapsed {self.partitions_collapsed}, "
            f"sessions dropped {self.viewers_dropped} "
            f"(drop rate {self.session_drop_rate:.4f}), "
            f"degraded {self.viewers_degraded}",
        ]


class VODServer:
    """A complete simulated VOD server under a fixed resource allocation."""

    def __init__(
        self,
        catalog: MovieCatalog,
        allocation: Mapping[int, SystemConfiguration],
        num_streams: int,
        buffer_pool: BufferPool,
        behavior: VCRBehavior | Mapping[int, VCRBehavior],
        workload: ServerWorkload,
        piggyback: PiggybackPolicy | None = None,
        observers: tuple = (),
        gate=None,
        tracer=None,
        predicted_hits: Mapping[int, float] | None = None,
    ) -> None:
        self._catalog = catalog
        self._allocation = dict(allocation)
        if isinstance(behavior, VCRBehavior):
            self._behaviors = {m.movie_id: behavior for m in catalog.popular}
        else:
            self._behaviors = dict(behavior)
            missing = [
                m.movie_id for m in catalog.popular if m.movie_id not in self._behaviors
            ]
            if missing:
                raise SimulationError(
                    f"per-movie behaviours missing for popular movie ids {missing}"
                )
        self._workload = workload
        self._piggyback = piggyback or PiggybackPolicy()
        # Observers see session/VCR/resume events (duck-typed: any subset of
        # the hooks documented in repro.vod.observers); the gate may veto
        # admissions before routing.  When tracing is on, a TracingObserver
        # joins them and the pool/services emit resource events; when off,
        # nothing is wired and the run is code-identical to an untraced one.
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._predicted_hits = dict(predicted_hits or {})
        observers = tuple(observers)
        if self._tracer is not None:
            observers = observers + (TracingObserver(self._tracer),)
        self._observers = observers
        self._gate = gate
        self._started = False
        self._degradation = None
        self._injector = None
        self._env = Environment()
        self._metrics = MetricsRegistry()
        self._streams = StreamPool(
            self._env, num_streams, self._metrics, tracer=self._tracer
        )
        self._buffers = buffer_pool
        self._admission = AdmissionController(
            self._env,
            catalog,
            self._allocation,
            self._streams,
            self._buffers,
            self._metrics,
            tracer=self._tracer,
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """The run's metrics registry."""
        return self._metrics

    @property
    def env(self) -> Environment:
        """The underlying simulation environment."""
        return self._env

    @property
    def stream_pool(self) -> StreamPool:
        """The shared I/O stream pool (fault-layer wiring point)."""
        return self._streams

    @property
    def buffer_pool(self) -> BufferPool:
        """The buffer pool (fault-layer wiring point)."""
        return self._buffers

    @property
    def admission(self) -> AdmissionController:
        """The admission controller owning the movie services."""
        return self._admission

    @property
    def degradation(self):
        """The attached DegradationManager, or None."""
        return self._degradation

    # ------------------------------------------------------------------
    # Fault layer.
    # ------------------------------------------------------------------
    def attach_fault_layer(
        self,
        plan,
        degrade: bool = True,
        policies: tuple[str, ...] | None = None,
        telemetry=None,
    ):
        """Wire a :class:`~repro.faults.plan.FaultPlan` into this server.

        With ``degrade=True`` a :class:`~repro.vod.degradation.DegradationManager`
        sheds load gracefully (viewers degrade instead of dropping); with
        ``degrade=False`` the faults simply land — the chaos experiment's
        no-policy baseline.  Must be called before :meth:`start`.  Returns
        the :class:`~repro.faults.injector.FaultInjector`.
        """
        # Local imports keep repro.vod importable without the faults package
        # loaded (and avoid a cycle: repro.faults reads vod modules too).
        from repro.faults.injector import FaultInjector
        from repro.vod.degradation import DEFAULT_POLICIES, DegradationManager

        if self._started:
            raise SimulationError("attach_fault_layer() after start()")
        if self._injector is not None:
            raise SimulationError("a fault layer is already attached")
        if degrade:
            self._degradation = DegradationManager(
                self._env,
                self._streams,
                self._admission.services,
                reconfigure=self.reconfigure_movie,
                policies=policies if policies is not None else DEFAULT_POLICIES,
                metrics=self._metrics,
                tracer=self._tracer,
            )
        self._injector = FaultInjector(
            self._env,
            plan,
            streams=self._streams,
            buffers=self._buffers,
            services=self._admission.services,
            telemetry=telemetry,
            manager=self._degradation,
            metrics=self._metrics,
            tracer=self._tracer,
        )
        return self._injector

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> ServerMetricsReport:
        """Execute the workload and reduce to a report."""
        _log.info(
            "run: %d popular movies, %d streams, horizon %g min",
            len(self._catalog.popular),
            self._streams.capacity,
            self._workload.horizon,
        )
        with span("server.run"):
            self.start()
            # Warm up, reset the books, then measure.
            self.step(self._workload.warmup)
            self._metrics.reset_all(self._env.now)
            self.step(self._workload.horizon)
            report = self.report()
        if self._tracer is not None:
            self._tracer.emit("run_end", self._env.now, label="vod-server")
            self._tracer.flush()
        _log.info(
            "run done: hit_rate=%.4f, %d viewers started",
            report.hit_rate,
            report.viewers_started,
        )
        return report

    def start(self) -> None:
        """Launch the restart schedules and the arrival process (idempotent).

        Separated from :meth:`run` so a control plane can drive the clock in
        ticks with :meth:`step` and reconfigure between them.
        """
        if self._started:
            return
        self._started = True
        if self._tracer is not None:
            self._tracer.emit("run_start", self._env.now, label="vod-server")
            for movie in self._catalog.popular:
                config = self._allocation[movie.movie_id]
                self._tracer.emit(
                    "movie_config",
                    self._env.now,
                    movie=movie.movie_id,
                    name=movie.title,
                    length=movie.length,
                    streams=config.num_partitions,
                    buffer_minutes=config.buffer_minutes,
                    predicted_hit=self._predicted_hits.get(movie.movie_id),
                )
        streams = RandomStreams(self._workload.seed)
        self._admission.start()
        if self._injector is not None:
            self._injector.start()
        self._env.process(self._arrival_process(streams), name="arrivals")

    def step(self, until: float) -> float:
        """Advance the simulation clock to ``until``; returns the new now."""
        if not self._started:
            raise SimulationError("step() before start()")
        if until > self._env.now:
            self._env.run(until=until)
        return self._env.now

    def report(self) -> ServerMetricsReport:
        """Reduce the metrics accumulated since the last reset to a report."""
        return self._report()

    # ------------------------------------------------------------------
    # Live reconfiguration (driven by the runtime actuator).
    # ------------------------------------------------------------------
    def current_allocation(self) -> dict[int, SystemConfiguration]:
        """The deployed ``{movie_id: configuration}`` map."""
        return self._admission.current_allocation()

    def set_behavior(self, movie_id: int, behavior: VCRBehavior) -> None:
        """Swap the ground-truth behaviour new sessions of one movie draw from.

        This is the experiment-side lever for injecting a mid-run behaviour
        shift (viewers already in flight keep their old behaviour); the
        control plane only ever sees its effects through telemetry.
        """
        if movie_id not in self._behaviors:
            raise SimulationError(f"movie {movie_id} has no behaviour to replace")
        self._behaviors[movie_id] = behavior

    def reconfigure_movie(self, movie_id: int, config: SystemConfiguration) -> None:
        """Adopt a new ``(B, n)`` for one popular movie.

        Buffer deltas move through the pool transactionally and the new
        restart spacing is picked up at the next restart boundary — see
        :meth:`repro.vod.admission.AdmissionController.reconfigure_movie`.
        Raises :class:`~repro.exceptions.ResourceError` when a buffer grow
        does not fit.
        """
        self._admission.reconfigure_movie(movie_id, config)
        self._allocation[movie_id] = config

    def _arrival_process(self, streams: RandomStreams) -> Generator[Event, object, None]:
        env = self._env
        rng_arrivals = streams.stream("arrivals")
        rng_movies = streams.stream("movie-choice")
        viewer_seq = 0
        while True:
            yield env.timeout(float(rng_arrivals.exponential(1.0 / self._workload.arrival_rate)))
            movie = self._catalog.sample(rng_movies)
            if self._gate is not None:
                verdict = self._gate.screen(movie, self._streams, env.now)
                if not verdict.allowed:
                    self._metrics.counter("gate.denied").increment()
                    self._metrics.counter(f"gate.denied.{movie.movie_id}").increment()
                    continue
            decision = self._admission.admit(movie)
            if not decision.admitted:
                continue
            viewer_seq += 1
            if decision.service is not None:
                notify_observers(
                    self._observers,
                    "on_session_start",
                    movie.movie_id,
                    movie.length,
                    now=env.now,
                )
                viewer = PopularViewer(
                    env,
                    decision.service,
                    self._behaviors[movie.movie_id],
                    self._streams,
                    self._piggyback,
                    self._metrics,
                    streams.stream("viewer"),
                    warmup=self._workload.warmup,
                    mean_patience=self._workload.mean_patience,
                    observers=self._observers,
                    degradation=self._degradation,
                )
                env.process(viewer.process(), name=f"viewer-{viewer_seq}")
            else:
                env.process(
                    self._tail_viewer(decision.dedicated_grant, movie.length),
                    name=f"tail-viewer-{viewer_seq}",
                )

    def _tail_viewer(self, grant, length: float) -> Generator[Event, object, None]:
        """A long-tail session: dedicated stream for the whole movie."""
        yield self._env.timeout(length)
        # A revoked dedicated stream already left the pool (the tail session
        # was dropped mid-movie; no policy can save a session whose only
        # stream is gone).
        if not grant.revoked:
            self._streams.release(grant)

    # ------------------------------------------------------------------
    # Reduction.
    # ------------------------------------------------------------------
    def _report(self) -> ServerMetricsReport:
        m = self._metrics
        now = self._env.now
        hits = m.counter_value("resume.hit")
        misses = m.counter_value("resume.miss")
        issued = sum(
            m.counter_value(f"vcr.issued.{suffix}") for suffix in ("FF", "RW", "PAU")
        )
        wait_stat = m.tally("wait_minutes")
        return ServerMetricsReport(
            hit_rate=hits / (hits + misses) if hits + misses else math.nan,
            resume_hits=hits,
            resume_misses=misses,
            vcr_blocked=m.counter_value("vcr.blocked"),
            vcr_issued=issued,
            resume_stalled=m.counter_value("resume.stalled"),
            piggyback_merged=m.counter_value("piggyback.merged"),
            piggyback_ran_to_end=m.counter_value("piggyback.ran_to_end"),
            restarts_starved=m.counter_value("restarts_starved"),
            rejected_unpopular=m.counter_value("rejected_unpopular"),
            admitted_unpopular=m.counter_value("admitted_unpopular"),
            mean_streams_playback=m.time_weighted(
                f"streams.{StreamPurpose.PLAYBACK.value}", now=now
            ).mean(now),
            mean_streams_vcr=m.time_weighted(
                f"streams.{StreamPurpose.VCR.value}", now=now
            ).mean(now),
            mean_streams_miss_hold=m.time_weighted(
                f"streams.{StreamPurpose.MISS_HOLD.value}", now=now
            ).mean(now),
            mean_streams_unpopular=m.time_weighted(
                f"streams.{StreamPurpose.UNPOPULAR.value}", now=now
            ).mean(now),
            mean_streams_total=m.time_weighted("streams.total", now=now).mean(now),
            viewers_started=m.counter_value("viewers.started"),
            viewers_completed=m.counter_value("viewers.completed"),
            viewers_defected=m.counter_value("viewers.defected"),
            mean_wait_minutes=wait_stat.mean if wait_stat.count else 0.0,
            viewers_dropped=m.counter_value("viewers.dropped"),
            viewers_degraded=m.counter_value("viewers.degraded"),
            faults_injected=m.counter_value("faults.injected"),
            streams_revoked=m.counter_value("streams.revoked"),
            partitions_collapsed=m.counter_value("partitions.collapsed"),
        )
