"""Allocation policies: how to split ``(n_s, B_s)`` across popular movies.

The server simulation is policy-agnostic — it just runs whatever per-movie
:class:`~repro.core.parameters.SystemConfiguration` it is given.  This module
builds those allocations three ways:

* :func:`pure_batching_allocation` — the paper's baseline: no buffering,
  ``n_i = l_i / w_i`` streams per movie (Example 1 computes 1230 for its
  three-movie system);
* :func:`equal_split_allocation` — a naive strawman: share the buffer budget
  equally regardless of movie statistics;
* :func:`model_sized_allocation` — delegate to the Section-5 optimiser in
  :mod:`repro.sizing` (imported lazily to keep layering acyclic).

Pure batching *is* the ``B = 0`` point of the partitioned scheme (Eq. 2 with
``B = 0`` makes the restart interval equal the maximum wait), so a separate
scheduler is unnecessary: a batching system is a :class:`MovieService` with a
zero-span partition.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.parameters import SystemConfiguration, VCRRates
from repro.exceptions import ConfigurationError
from repro.vod.movie import Movie

__all__ = [
    "pure_batching_allocation",
    "equal_split_allocation",
    "allocation_stream_total",
    "allocation_buffer_total",
]


def _streams_for_wait(length: float, wait: float) -> int:
    """``n = ceil(l / w)`` — streams to guarantee wait ``w`` with no buffer."""
    if wait <= 0:
        raise ConfigurationError(f"wait target must be positive, got {wait}")
    return max(1, math.ceil(length / wait - 1e-9))


def pure_batching_allocation(
    movies: Sequence[Movie],
    waits: Mapping[int, float],
    rates: VCRRates | None = None,
) -> dict[int, SystemConfiguration]:
    """One batching config per movie: ``B = 0``, ``n_i = l_i / w_i``."""
    rates = rates or VCRRates.paper_default()
    allocation: dict[int, SystemConfiguration] = {}
    for movie in movies:
        wait = waits[movie.movie_id]
        allocation[movie.movie_id] = SystemConfiguration.pure_batching(
            movie.length, _streams_for_wait(movie.length, wait), rates=rates
        )
    return allocation


def equal_split_allocation(
    movies: Sequence[Movie],
    waits: Mapping[int, float],
    total_buffer_minutes: float,
    rates: VCRRates | None = None,
) -> dict[int, SystemConfiguration]:
    """Naive policy: give every movie the same buffer slice, waits from Eq. (2).

    Buffer per movie is capped at the movie length; the stream count follows
    from ``n = (l − B)/w`` rounded up (rounding up keeps the wait target met
    at slightly more streams).
    """
    if total_buffer_minutes < 0:
        raise ConfigurationError(f"buffer budget must be >= 0, got {total_buffer_minutes}")
    if not movies:
        raise ConfigurationError("allocation needs at least one movie")
    rates = rates or VCRRates.paper_default()
    slice_minutes = total_buffer_minutes / len(movies)
    allocation: dict[int, SystemConfiguration] = {}
    for movie in movies:
        wait = waits[movie.movie_id]
        buffer_minutes = min(slice_minutes, movie.length)
        num = max(1, math.ceil((movie.length - buffer_minutes) / wait - 1e-9))
        # Re-derive B from Eq. (2) so the wait target is met exactly.
        buffer_minutes = max(0.0, movie.length - num * wait)
        allocation[movie.movie_id] = SystemConfiguration(
            movie_length=movie.length,
            num_partitions=num,
            buffer_minutes=buffer_minutes,
            rates=rates,
        )
    return allocation


def allocation_stream_total(allocation: Mapping[int, SystemConfiguration]) -> int:
    """``Σ n_i`` across the allocation."""
    return sum(config.num_partitions for config in allocation.values())


def allocation_buffer_total(allocation: Mapping[int, SystemConfiguration]) -> float:
    """``Σ B_i`` (minutes) across the allocation."""
    return sum(config.buffer_minutes for config in allocation.values())
