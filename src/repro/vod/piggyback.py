"""Piggybacking: the phase-2 fallback for resume misses.

When a resuming viewer misses every partition, the paper (Section 2, phase 2)
keeps him on the phase-1 stream "until he can join a partition, for instance,
using the piggybacking technique" — displaying slightly faster or slower than
nominal so his position drifts into a partition window, at which point the
dedicated stream is released (Golubchik, Lui & Muntz 1996).

Display-rate deviations are bounded by what viewers tolerate; the classic
figure is ±5%.  Given a missed viewer between two partitions, this policy
picks the cheaper drift direction and computes the merge time analytically:

* drift *forward* (display at ``1 + ε``): the viewer gains on the partition
  ahead, whose trailing edge is ``gap_ahead`` in front; merge after
  ``gap_ahead / ε`` wall minutes — unless the movie ends first;
* drift *backward* (display at ``1 − ε``): the partition behind gains on the
  viewer at the same relative speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import SystemConfiguration
from repro.exceptions import ConfigurationError
from repro.simulation.kinematics import find_covering_window

__all__ = ["MergePlan", "PiggybackPolicy"]


@dataclass(frozen=True)
class MergePlan:
    """The outcome of planning a piggyback merge for a missed viewer.

    ``wall_minutes`` is how long the dedicated stream stays pinned before the
    viewer joins a partition (``math.inf`` if the movie ends first, in which
    case the stream is pinned for the rest of the session —
    ``minutes_to_end``).
    """

    direction: str              # "forward", "backward", or "none"
    wall_minutes: float         # time until merge (inf when unreachable)
    minutes_to_end: float       # time until the session would end anyway

    @property
    def merges(self) -> bool:
        """True when the merge lands before the session ends."""
        return self.wall_minutes < self.minutes_to_end

    @property
    def hold_minutes(self) -> float:
        """How long the stream actually stays pinned."""
        return min(self.wall_minutes, self.minutes_to_end)


class PiggybackPolicy:
    """Plans merges for miss-resumed viewers under a display-rate tolerance."""

    def __init__(self, rate_tolerance: float = 0.05) -> None:
        if not 0.0 < rate_tolerance < 1.0:
            raise ConfigurationError(
                f"rate tolerance must be in (0, 1), got {rate_tolerance}"
            )
        self._epsilon = rate_tolerance

    @property
    def rate_tolerance(self) -> float:
        """The display-rate deviation epsilon."""
        return self._epsilon

    def plan(
        self, config: SystemConfiguration, now: float, position: float
    ) -> MergePlan:
        """Plan the cheapest merge for a viewer at ``position`` at time ``now``.

        Uses the idealised periodic restart lattice; the server simulation
        computes gaps from its actual live streams and calls
        :meth:`plan_from_gaps` instead.  If a window already covers the
        position the plan is an immediate no-op merge ("none", 0 minutes).
        """
        length = config.movie_length
        playback = config.rates.playback
        minutes_to_end = (length - position) / playback
        if find_covering_window(config, now, position) is not None:
            return MergePlan(direction="none", wall_minutes=0.0, minutes_to_end=minutes_to_end)
        if config.partition_span <= 0.0:
            # Pure batching: no windows exist; the stream is pinned to the end.
            return MergePlan(
                direction="none", wall_minutes=math.inf, minutes_to_end=minutes_to_end
            )
        gap_ahead, gap_behind = self._gaps(config, now, position)
        return self.plan_from_gaps(
            gap_ahead, gap_behind, minutes_to_end, playback_rate=playback
        )

    def plan_from_gaps(
        self,
        gap_ahead: float | None,
        gap_behind: float | None,
        minutes_to_end: float,
        playback_rate: float = 1.0,
    ) -> MergePlan:
        """Plan a merge given measured gaps to the neighbouring partitions.

        ``gap_ahead`` is the distance to the trailing edge of the nearest
        partition ahead; ``gap_behind`` to the leading edge of the nearest
        partition behind (both in movie minutes, ``None`` when absent).
        """
        drift = self._epsilon * playback_rate
        forward_time = gap_ahead / drift if gap_ahead is not None else math.inf
        backward_time = gap_behind / drift if gap_behind is not None else math.inf

        # Forward drift also advances the viewer; the merge must happen
        # before *he* reaches the end at the faster rate.
        forward_deadline = minutes_to_end * playback_rate / (
            playback_rate * (1.0 + self._epsilon)
        )
        if forward_time > forward_deadline:
            forward_time = math.inf
        # Backward drift slows the viewer down, extending his session; the
        # merge must land before the (slowed) session ends.
        backward_deadline = minutes_to_end * playback_rate / (
            playback_rate * (1.0 - self._epsilon)
        )
        if backward_time > backward_deadline:
            backward_time = math.inf

        if forward_time <= backward_time:
            return MergePlan(
                direction="forward" if math.isfinite(forward_time) else "none",
                wall_minutes=forward_time,
                minutes_to_end=minutes_to_end,
            )
        return MergePlan(
            direction="backward", wall_minutes=backward_time, minutes_to_end=minutes_to_end
        )

    def _gaps(
        self, config: SystemConfiguration, now: float, position: float
    ) -> tuple[float | None, float | None]:
        """Distance to the trailing edge ahead and the leading edge behind.

        Live playheads form the lattice ``phi + k*spacing`` (``phi = now mod
        spacing``) intersected with ``[0, min(now, l)]``, so the nearest
        neighbours in each direction are closed-form.  Both gaps are measured
        in movie minutes; ``None`` means no live partition in that direction
        (e.g. a fast-forwarder ahead of every stream during startup).
        """
        spacing = config.partition_spacing
        span = config.partition_span
        phi = math.fmod(now, spacing)
        top = min(now, config.movie_length)
        tiny = 1e-9

        # Nearest leading edge strictly behind the viewer.
        behind: float | None = None
        k_behind = math.floor((position - phi - tiny) / spacing)
        p_behind = phi + k_behind * spacing
        if 0.0 <= p_behind <= top + tiny:
            behind = position - p_behind

        # Nearest trailing edge strictly ahead of the viewer.
        ahead: float | None = None
        k_ahead = math.ceil((position + span - phi + tiny) / spacing)
        p_ahead = phi + k_ahead * spacing
        if 0.0 <= p_ahead <= top + tiny:
            ahead = (p_ahead - span) - position
        return ahead, behind
