"""Graceful degradation: ordered shedding policies for a faulted server.

When the fault layer shrinks the stream pool (disk degradation) or revokes
grants, something has to give.  Without a policy the server just drops the
sessions whose streams vanish; the :class:`DegradationManager` instead sheds
load in a configurable order, least painful first:

1. ``shed_vcr`` — revoke phase-1 VCR streams and phase-2 miss holds.  Those
   viewers degrade (the VCR op is denied, the resume becomes a miss/stall)
   but their sessions survive.
2. ``widen_restart`` — reconfigure each movie to one fewer partition
   (``n-1``), widening the restart interval ``w = (l-B)/n``.  This lowers
   *future* stream demand; streams already live run to their natural end.
3. ``collapse_partition`` — collapse the coldest partitions (oldest
   restarts, nearest the end of the movie, hence serving the fewest future
   resumes) to free playback streams immediately.

Each policy engagement bumps the degradation *level* (its 1-based position
in the engaged order) and emits a ``degradation_entered`` trace event; when
the injector reports that every transient fault has recovered, the manager
restores the baseline allocations and unwinds the levels with
``degradation_exited`` events, deepest first.
"""

from __future__ import annotations

from repro.core.parameters import SystemConfiguration
from repro.exceptions import SimulationError
from repro.vod.streams import StreamPurpose

__all__ = ["DEFAULT_POLICIES", "DegradationManager"]

#: The default shedding order described in the module docstring.
DEFAULT_POLICIES: tuple[str, ...] = (
    "shed_vcr",
    "widen_restart",
    "collapse_partition",
)


class DegradationManager:
    """Sheds load in policy order; restores the baseline on recovery."""

    def __init__(
        self,
        env,
        streams,
        services,
        reconfigure=None,
        policies: tuple[str, ...] = DEFAULT_POLICIES,
        metrics=None,
        tracer=None,
    ) -> None:
        unknown = set(policies) - set(DEFAULT_POLICIES)
        if unknown:
            raise SimulationError(
                f"unknown degradation policies {sorted(unknown)} "
                f"(known: {list(DEFAULT_POLICIES)})"
            )
        self._env = env
        self._streams = streams
        self._services = tuple(services)
        # reconfigure(movie_id, config) — typically VODServer.reconfigure_movie
        # so the buffer books move with the service; None disables widening.
        self._reconfigure = reconfigure
        self._policies = tuple(policies)
        self._metrics = metrics
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._engaged: list[str] = []
        self._baseline: dict[int, SystemConfiguration] = {}
        self.sessions_degraded = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current degradation depth (0 = healthy)."""
        return len(self._engaged)

    @property
    def engaged_policies(self) -> tuple[str, ...]:
        """The policies currently holding the system degraded, in order."""
        return tuple(self._engaged)

    # ------------------------------------------------------------------
    # Hooks the viewer path uses.
    # ------------------------------------------------------------------
    def session_degraded(self) -> None:
        """A viewer survived a revocation by degrading instead of dropping."""
        self.sessions_degraded += 1
        if self._metrics is not None:
            self._metrics.counter("degradation.sessions_degraded").increment()

    # ------------------------------------------------------------------
    # Hooks the injector drives.
    # ------------------------------------------------------------------
    def on_pressure(self) -> None:
        """Capacity shrank: shed in policy order until the books balance."""
        for policy in self._policies:
            overcommit = self._streams.in_use - self._streams.capacity
            if overcommit <= 0:
                return
            if policy == "shed_vcr":
                self._shed_vcr(overcommit)
            elif policy == "widen_restart":
                self._widen_restart()
            elif policy == "collapse_partition":
                self._collapse_coldest(
                    self._streams.in_use - self._streams.capacity
                )

    def on_revocation(self, victims) -> None:
        """Grants were revoked out from under their holders."""
        if victims and any(
            grant.purpose is StreamPurpose.PLAYBACK for grant in victims
        ):
            # Playback revocations already collapsed partitions; record the
            # shedding level so the trace shows the degraded interval.
            self._engage("collapse_partition")

    def shed_partitions(self, count: int) -> int:
        """Buffer pressure: collapse the ``count`` coldest partitions."""
        return self._collapse_coldest(count)

    def shed_load(self, count: int) -> int:
        """SLO-armed shedding: revoke up to ``count`` VCR/miss-hold streams.

        Unlike :meth:`on_pressure` this does not require the books to be
        overcommitted — a burn-rate page means the service is too slow or
        too deny-happy *within* capacity, and freeing interaction streams is
        the gentlest lever (the victims degrade back into their batch
        rather than dropping).  Returns the number of streams actually
        revoked; engages the ``shed_vcr`` level when any were.
        """
        if count <= 0:
            return 0
        victims = self._streams.revoke(
            count, order=(StreamPurpose.VCR, StreamPurpose.MISS_HOLD)
        )
        if victims:
            self._engage("shed_vcr")
        return len(victims)

    def on_recovery(self) -> None:
        """Every transient fault recovered: restore and unwind the levels."""
        for movie_id, config in sorted(self._baseline.items()):
            if self._reconfigure is not None:
                self._reconfigure(movie_id, config)
        self._baseline.clear()
        while self._engaged:
            level = len(self._engaged)
            self._engaged.pop()
            if self._metrics is not None:
                self._metrics.counter("degradation.exited").increment()
            if self._tracer is not None:
                self._tracer.emit("degradation_exited", self._env.now, level=level)

    # ------------------------------------------------------------------
    # Policies.
    # ------------------------------------------------------------------
    def _engage(self, policy: str) -> None:
        if policy in self._engaged:
            return
        self._engaged.append(policy)
        if self._metrics is not None:
            self._metrics.counter("degradation.entered").increment()
            self._metrics.counter(f"degradation.entered.{policy}").increment()
        if self._tracer is not None:
            self._tracer.emit(
                "degradation_entered",
                self._env.now,
                level=len(self._engaged),
                policy=policy,
            )

    def _shed_vcr(self, count: int) -> None:
        self.shed_load(count)

    def _widen_restart(self) -> None:
        widened = False
        for service in sorted(self._services, key=lambda s: s.movie.movie_id):
            config = service.config
            if config.num_partitions <= 1:
                continue
            movie_id = service.movie.movie_id
            self._baseline.setdefault(movie_id, config)
            if self._reconfigure is not None:
                self._reconfigure(
                    movie_id, config.with_partitions(config.num_partitions - 1)
                )
                widened = True
        if widened:
            self._engage("widen_restart")

    def _collapse_coldest(self, count: int) -> int:
        """Collapse up to ``count`` partitions, oldest restart first."""
        if count <= 0:
            return 0
        candidates = [
            (stream, service)
            for service in self._services
            for stream in service.live_streams
        ]
        candidates.sort(
            key=lambda pair: (pair[0].start_time, pair[1].movie.movie_id)
        )
        collapsed = 0
        for stream, service in candidates[:count]:
            service.collapse(stream)
            collapsed += 1
        if collapsed:
            self._engage("collapse_partition")
        return collapsed
