"""repro — reproduction of Leung, Lui & Golubchik (ICDE 1997).

Buffer and I/O resource pre-allocation for implementing batching and
buffering techniques for video-on-demand systems.

Public API highlights
---------------------
* :class:`repro.core.SystemConfiguration` — the ``(l, n, B, rates)`` geometry.
* :class:`repro.core.HitProbabilityModel` — the analytical ``P(hit)`` model.
* :mod:`repro.distributions` — VCR-duration distribution families.
* :mod:`repro.simulation` — the discrete-event validation simulator.
* :mod:`repro.sizing` — feasible sets, allocation optimisation, cost model.
* :mod:`repro.vod` — full VOD-server simulation substrate.
* :mod:`repro.experiments` — regenerate every figure/table of the paper.
"""

from repro.core import (
    HitBreakdown,
    HitProbabilityModel,
    Phase2Model,
    SystemConfiguration,
    VCRMix,
    VCROperation,
    VCRRates,
    WaitingTimeModel,
)
from repro.exceptions import (
    ConfigurationError,
    DistributionError,
    InfeasibleError,
    NumericsError,
    ReproError,
    SimulationError,
    SizingError,
)

__version__ = "1.0.0"

__all__ = [
    "HitBreakdown",
    "HitProbabilityModel",
    "Phase2Model",
    "WaitingTimeModel",
    "SystemConfiguration",
    "VCRMix",
    "VCROperation",
    "VCRRates",
    "ReproError",
    "ConfigurationError",
    "DistributionError",
    "NumericsError",
    "SimulationError",
    "SizingError",
    "InfeasibleError",
    "__version__",
]
