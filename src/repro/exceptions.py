"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch a single base class at an
application boundary while still discriminating specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid system configuration (e.g. ``B > l`` or ``n < 1``).

    Inherits from :class:`ValueError` because configuration problems are
    fundamentally bad argument values; ``except ValueError`` also works.
    """


class DistributionError(ReproError, ValueError):
    """An invalid probability-distribution parameterisation."""


class NumericsError(ReproError, ArithmeticError):
    """A numerical routine failed to converge or received a bad bracket."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class ResourceError(SimulationError):
    """A simulated resource (stream, buffer) was misused, e.g. double release."""


class StreamAccountingError(ResourceError):
    """A stream grant was released, retagged or revoked against the wrong books.

    Raised on double release, on releasing/retagging a grant a pool never
    issued (a *foreign* grant), and on operating on a grant the fault layer
    already revoked.  Revocation makes all three reachable from correct
    viewer code, so the pool polices them explicitly instead of silently
    corrupting the per-purpose occupancy accounts.
    """


class FittingError(ConfigurationError):
    """A distribution or behaviour fit could not be performed on the sample.

    Subclasses :class:`ConfigurationError` so existing callers that catch the
    broader class keep working; the online refit path catches this narrow
    type to skip a refit instead of crashing mid-cycle.
    """


class InsufficientDataError(FittingError):
    """Too few samples to fit anything (0–1 samples, or below the floor)."""


class DegenerateDataError(FittingError):
    """The sample admits no meaningful parametric fit (e.g. all-identical).

    Raised only when no deterministic fallback exists; zero-variance samples
    fall back to a point mass instead of raising.
    """


class ClockRegressionError(SimulationError):
    """A time-stamped statistic was fed a timestamp earlier than its last one.

    Time-weighted metrics integrate state over elapsed time; a regressing
    clock would subtract area and silently corrupt the weighted mean, so the
    update (and any read at a stale ``now``) fails loudly instead.
    """


class ObserverError(SimulationError):
    """An attached observer raised inside one of its hooks.

    The offending hook and observer are named in the message and the original
    exception is chained, so instrumentation bugs surface as themselves
    instead of masquerading as simulation failures.
    """


class ObservabilityError(ReproError):
    """Base class for metrics/tracing errors raised by :mod:`repro.obs`."""


class TraceSchemaError(ObservabilityError, ValueError):
    """A structured trace event does not conform to the event schema."""


class SizingError(ReproError, RuntimeError):
    """System sizing could not produce a feasible allocation."""


class InfeasibleError(SizingError):
    """No ``(B, n)`` pair satisfies the requested performance targets."""


class FaultError(ReproError, RuntimeError):
    """Base class for the deterministic fault-injection layer."""


class FaultPlanError(FaultError, ValueError):
    """A fault plan is malformed: bad JSON shape, unknown kind, bad times.

    Inherits :class:`ValueError` because a bad plan is fundamentally a bad
    argument; ``except ValueError`` at a CLI boundary also works.
    """


class DegradedModeError(FaultError):
    """A fresh plan/actuation was demanded while the control loop is degraded.

    The circuit breaker is open: repeated re-fit/solve/actuation failures
    tripped it, and the system is deliberately coasting on the last-good
    allocation until the sim-clock backoff expires.  Callers that can accept
    stale plans should not see this; callers that *require* a fresh plan get
    a typed refusal instead of a silently stale answer.
    """


class ActuationRetryExhausted(FaultError):
    """Re-queued partial actuations kept failing past the retry bound.

    The remainder of a partially applied :class:`AllocationDelta` was
    re-queued and re-applied the configured number of times without ever
    landing fully; the loop falls back to the deployed state and surfaces
    this so operators see a stuck actuation instead of an infinite retry.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class for the live admission service (:mod:`repro.service`)."""


class ProtocolError(ServiceError, ValueError):
    """A request/response line violates the JSON-line wire protocol.

    Inherits :class:`ValueError` because a malformed line is fundamentally a
    bad argument; the server answers with a typed ``error`` response instead
    of dropping the connection, so one bad client line never kills a session.
    """


class SessionStateError(ServiceError):
    """A request references a session in an impossible state.

    Raised (and mapped to an ``error`` response at the server boundary) on
    duplicate ``session_start`` ids, on VCR/end requests for sessions that
    were never started, and on requests arriving after the session closed.
    """


class WorkerCrashError(FaultError):
    """A parallel worker process died and bounded shard retries ran out.

    Task *exceptions* propagate as themselves; this is reserved for the
    worker process vanishing (OOM-kill, segfault, ``os._exit``) repeatedly
    enough that reassignment gave up.
    """
