"""Library-wide logging: one hierarchy, configured once by the CLI.

Library code never prints to stdout.  Modules obtain a namespaced logger via
:func:`get_logger` (all under the ``repro`` root logger) and log at the
usual levels; nothing is shown unless an application configures handlers.
The ``repro-vod`` CLI calls :func:`configure` exactly once, mapping its
``-v``/``-q`` flags to a level, with output on **stderr** so piped stdout
stays machine-readable (tables, CSV, exported metrics).
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["get_logger", "configure", "verbosity_level"]

_ROOT = "repro"
_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def verbosity_level(verbose: int = 0, quiet: int = 0) -> int:
    """Map CLI ``-v``/``-q`` counts to a :mod:`logging` level.

    Default WARNING; each ``-v`` lowers (INFO, DEBUG), each ``-q`` raises
    (ERROR, CRITICAL).
    """
    step = quiet - verbose
    level = logging.WARNING + 10 * step
    return max(logging.DEBUG, min(logging.CRITICAL, level))


def configure(
    verbose: int = 0, quiet: int = 0, stream: IO[str] | None = None
) -> logging.Logger:
    """Configure the ``repro`` root logger once (idempotent).

    Re-invocation replaces the handler rather than stacking duplicates, so
    tests and long-lived processes can reconfigure safely.
    """
    root = get_logger()
    root.setLevel(verbosity_level(verbose, quiet))
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    root.propagate = False
    return root
