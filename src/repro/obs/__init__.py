"""Unified observability: metrics registry, event tracing, profiling spans.

One zero-dependency subsystem carries every quantity the paper's argument
needs watched end-to-end:

* :mod:`repro.obs.registry` — labelled :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` families with Prometheus-style text exposition and JSON
  export, split into a deterministic ``stable`` tier and a wall-clock
  ``process`` tier;
* :mod:`repro.obs.trace` — schema-versioned JSONL event tracing
  (:class:`TraceWriter` / :class:`NullTraceWriter`) of the batching/VCR
  session lifecycle, stream pool and control plane;
* :mod:`repro.obs.spans` — the :func:`span` profiling context manager,
  aggregated into the registry as histograms;
* :mod:`repro.obs.adapters` — exporters from the simulation-time metrics,
  the model-evaluation cache and parallel outcomes into the registry, plus
  the :class:`TracingObserver` server bridge;
* :mod:`repro.obs.summarize` — trace replay into a run report (observed vs
  predicted ``P(hit)``, stream occupancy timeline, VCR mix);
* :mod:`repro.obs.log` — the library-wide :mod:`logging` hierarchy the CLI
  configures via ``-v``/``-q``.

Determinism contract: trace events and stable-tier metrics read time from
the simulation environment, never the wall clock, so serial and parallel
runs of the same inputs export byte-identical files.
"""

from repro.obs.adapters import (
    TracingObserver,
    export_cache_stats,
    export_controller_counters,
    export_parallel_outcome,
    export_sim_metrics,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    TIER_PROCESS,
    TIER_STABLE,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    ObsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.spans import Span, span
from repro.obs.summarize import (
    MovieSummary,
    TraceSummary,
    summarize_trace,
    wilson_interval,
)
from repro.obs.trace import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    NullTraceWriter,
    TraceWriter,
    read_trace,
    validate_event,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "ObsRegistry",
    "DEFAULT_BUCKETS",
    "TIER_STABLE",
    "TIER_PROCESS",
    "default_registry",
    "set_default_registry",
    "TraceWriter",
    "NullTraceWriter",
    "SCHEMA_VERSION",
    "EVENT_SCHEMA",
    "read_trace",
    "validate_event",
    "validate_trace_file",
    "Span",
    "span",
    "TracingObserver",
    "export_sim_metrics",
    "export_cache_stats",
    "export_controller_counters",
    "export_parallel_outcome",
    "MovieSummary",
    "TraceSummary",
    "summarize_trace",
    "wilson_interval",
    "get_logger",
    "configure_logging",
]
