"""Unified observability: metrics registry, event tracing, profiling spans.

One zero-dependency subsystem carries every quantity the paper's argument
needs watched end-to-end:

* :mod:`repro.obs.registry` — labelled :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` families with Prometheus-style text exposition and JSON
  export, split into a deterministic ``stable`` tier and a wall-clock
  ``process`` tier;
* :mod:`repro.obs.trace` — schema-versioned JSONL event tracing
  (:class:`TraceWriter` / :class:`NullTraceWriter`) of the batching/VCR
  session lifecycle, stream pool and control plane;
* :mod:`repro.obs.spans` — the :func:`span` profiling context manager,
  aggregated into the registry as histograms;
* :mod:`repro.obs.adapters` — exporters from the simulation-time metrics,
  the model-evaluation cache and parallel outcomes into the registry, plus
  the :class:`TracingObserver` server bridge;
* :mod:`repro.obs.summarize` — trace replay into a run report (observed vs
  predicted ``P(hit)``, stream occupancy timeline, VCR mix);
* :mod:`repro.obs.context` — request-scoped trace contexts (deterministic
  trace/span ids threaded engine → gate → control loop → actuator);
* :mod:`repro.obs.scrape` — the live scrape endpoint plus the client-side
  exposition parser and counter-monotonicity differ;
* :mod:`repro.obs.slo` — burn-rate SLO monitoring (p99 latency, deny rate)
  over deterministic service-clock windows;
* :mod:`repro.obs.log` — the library-wide :mod:`logging` hierarchy the CLI
  configures via ``-v``/``-q``.

Determinism contract: trace events and stable-tier metrics read time from
the simulation environment, never the wall clock, so serial and parallel
runs of the same inputs export byte-identical files.
"""

from repro.obs.adapters import (
    TracingObserver,
    export_cache_stats,
    export_controller_counters,
    export_parallel_outcome,
    export_sim_metrics,
)
from repro.obs.catalog import METRIC_CATALOG, catalog_registry
from repro.obs.context import RequestContext, mint_trace_id
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    REQUEST_LATENCY_BUCKETS,
    TIER_PROCESS,
    TIER_STABLE,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    ObsRegistry,
    default_registry,
    log_buckets,
    set_default_registry,
)
from repro.obs.scrape import (
    Exposition,
    ScrapeEndpoint,
    monotonic_regressions,
    parse_exposition,
)
from repro.obs.slo import SLOAlert, SLOConfig, SLOMonitor
from repro.obs.spans import Span, span
from repro.obs.summarize import (
    MovieSummary,
    RequestChain,
    TraceSummary,
    reconstruct_request,
    summarize_trace,
    wilson_interval,
)
from repro.obs.trace import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    NullTraceWriter,
    TraceWriter,
    read_trace,
    validate_event,
    validate_trace_file,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "ObsRegistry",
    "DEFAULT_BUCKETS",
    "REQUEST_LATENCY_BUCKETS",
    "TIER_STABLE",
    "TIER_PROCESS",
    "METRIC_CATALOG",
    "catalog_registry",
    "default_registry",
    "log_buckets",
    "set_default_registry",
    "TraceWriter",
    "NullTraceWriter",
    "SCHEMA_VERSION",
    "EVENT_SCHEMA",
    "read_trace",
    "validate_event",
    "validate_trace_file",
    "RequestContext",
    "mint_trace_id",
    "ScrapeEndpoint",
    "Exposition",
    "parse_exposition",
    "monotonic_regressions",
    "SLOAlert",
    "SLOConfig",
    "SLOMonitor",
    "Span",
    "span",
    "TracingObserver",
    "export_sim_metrics",
    "export_cache_stats",
    "export_controller_counters",
    "export_parallel_outcome",
    "MovieSummary",
    "RequestChain",
    "TraceSummary",
    "reconstruct_request",
    "summarize_trace",
    "wilson_interval",
    "get_logger",
    "configure_logging",
]
