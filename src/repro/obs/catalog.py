"""The declared catalog of ``repro_*`` metric family names.

Every metric family registered against an :class:`~repro.obs.registry.ObsRegistry`
carries a ``repro_``-prefixed name; this module is the single place those
names are *declared*.  The static cross-check rule
(:mod:`repro.analysis.schema_check`) extracts every literal family name used
at a ``registry.counter/gauge/histogram`` call site and fails the lint run
when a used name is missing here or a declared name is never used anywhere —
so the catalog can never drift from the code, and dashboards/alerts built on
these names can treat the catalog as authoritative.

Sim-internal tallies (``restarts``, ``gate.denied.<movie>``, …) live in
:mod:`repro.sim.metrics` name-spaces and are exported under the labelled
families below; they are deliberately *not* part of this catalog.
"""

from __future__ import annotations

from repro.obs.registry import ObsRegistry

__all__ = ["METRIC_CATALOG", "catalog_registry"]

#: Every declared ObsRegistry metric family name.  Keep sorted.
METRIC_CATALOG: frozenset[str] = frozenset(
    {
        # Chaos experiment (repro.experiments.chaos).
        "repro_chaos_session_drop_rate",
        "repro_chaos_sessions_dropped_total",
        # Control plane (repro.runtime, repro.obs.adapters).
        "repro_controller_decisions_total",
        "repro_partial_actuations_total",
        # Analytic sweeps (repro.experiments.figure8).
        "repro_frontier_points_total",
        # Model-evaluation cache telemetry (repro.obs.adapters).
        "repro_model_cache_entries",
        "repro_model_cache_evictions",
        "repro_model_cache_lookups",
        # Parallel executor telemetry (repro.obs.adapters).
        "repro_parallel_map_seconds",
        "repro_parallel_shard_cache_lookups",
        "repro_parallel_shard_seconds",
        "repro_parallel_shard_tasks",
        "repro_parallel_workers",
        # Request-scoped telemetry (repro.service.engine).
        "repro_request_latency_seconds",
        # Live admission service (repro.service).
        "repro_service_decisions_total",
        "repro_service_inflight_requests",
        "repro_service_request_latency_seconds",
        # SLO monitor (repro.obs.slo).
        "repro_slo_alerts_total",
        "repro_slo_breaching",
        "repro_slo_burn_rate",
        # Simulation exports (repro.obs.adapters).
        "repro_sim_events_total",
        "repro_sim_tally_mean",
        "repro_sim_time_avg",
        # Profiling spans (repro.obs.spans).
        "repro_span_seconds",
    }
)


def catalog_registry() -> ObsRegistry:
    """An :class:`ObsRegistry` with runtime catalog enforcement armed.

    Long-lived deployments construct their registry here so that any
    ``repro_*`` family name missing from :data:`METRIC_CATALOG` raises at
    registration time — the runtime counterpart of the static
    ``metric-schema`` lint rule.
    """
    return ObsRegistry(catalog=METRIC_CATALOG)
