"""The one sanctioned wall-clock read in the observability package.

``repro.obs`` sits inside the determinism lint scope because it hosts the
trace plane, whose exposition must be byte-identical across worker counts.
Profiling spans, however, *measure real elapsed time by design* — they feed
the ``TIER_PROCESS`` metrics tier, which the deterministic exposition
already excludes.  Rather than sprinkle per-call-site suppressions, the
whole package funnels through this helper: one audited ``perf_counter``
read, one inline pragma, and the lint baseline stays empty.

Anything in ``repro.obs`` that needs wall-clock time must call
:func:`process_clock`; a direct ``time.perf_counter()`` anywhere else in the
package is a lint finding by construction.
"""

from __future__ import annotations

import time

__all__ = ["process_clock"]


def process_clock() -> float:
    """Monotonic process-tier seconds (the span plane's wall clock).

    Wraps :func:`time.perf_counter` so the determinism lint has exactly one
    audited wall-clock site in ``repro.obs`` instead of a baseline entry.
    """
    return time.perf_counter()  # lint: allow(determinism-wallclock) process tier by design
