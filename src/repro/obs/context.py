"""Request-scoped trace context for the live admission service.

A :class:`RequestContext` is minted per protocol request by the component
that first sees it (the engine for in-process virtual runs, the server for
TCP requests) and handed down through the layers that act on the request —
``AdmissionEngine`` → ``RuntimeAdmissionGate`` → ``GuardedControlLoop`` →
actuator.  Every trace event those layers emit while holding the context
carries its ``trace_id``, so one grep (or ``repro-vod obs trace --request``)
reconstructs the request's full causal chain.

Determinism contract: trace ids are minted from a per-engine monotone
counter, never from wall clock or randomness, so two virtual-clock runs of
the same workload mint identical ids.  Span ids are ``trace_id:name`` with
deterministic layer names ("root", "gate", "tick", "actuate"); entering a
span again appends ``#2``, ``#3``, … so repeated ticks stay distinct.
"""

from __future__ import annotations

__all__ = ["RequestContext", "mint_trace_id"]


def mint_trace_id(sequence: int) -> str:
    """The deterministic trace id for the ``sequence``-th request."""
    return f"req-{sequence:06d}"


class RequestContext:
    """One request's trace identity and latency accounting.

    ``received_seconds`` is the service-clock reading (seconds) when the
    request line was read off the wire; ``queue_wait_seconds`` is how long
    it sat behind the in-flight limiter before the engine saw it.  Both are
    exactly 0.0-valued deltas on a virtual clock, keeping deterministic
    traces byte-identical.
    """

    __slots__ = ("trace_id", "received_seconds", "queue_wait_seconds", "_spans")

    def __init__(
        self,
        trace_id: str,
        received_seconds: float = 0.0,
        queue_wait_seconds: float = 0.0,
    ) -> None:
        self.trace_id = trace_id
        self.received_seconds = float(received_seconds)
        self.queue_wait_seconds = float(queue_wait_seconds)
        self._spans: list[str] = [f"{trace_id}:root"]

    @property
    def root_span(self) -> str:
        """The request's root span id."""
        return self._spans[0]

    @property
    def current_span(self) -> str:
        """The most recently entered span id (root before any ``enter``)."""
        return self._spans[-1]

    @property
    def spans(self) -> tuple[str, ...]:
        """Every span entered so far, in order, starting with root."""
        return tuple(self._spans)

    def enter(self, name: str) -> str:
        """Enter a child span named for the layer doing the work.

        Returns the new span id; repeated entries of the same name get a
        ``#k`` suffix so each occurrence stays addressable.
        """
        span_id = f"{self.trace_id}:{name}"
        occurrence = sum(
            1 for s in self._spans if s == span_id or s.startswith(span_id + "#")
        )
        if occurrence:
            span_id = f"{span_id}#{occurrence + 1}"
        self._spans.append(span_id)
        return span_id
