"""Lightweight profiling spans aggregated into the metrics registry.

A span measures one wall-clock section on the monotonic clock and records
its duration into a ``repro_span_seconds`` histogram (``TIER_PROCESS`` — the
deterministic exposition never includes wall clock).  Spans nest through a
per-thread stack; a child's label is its dotted path, so

    with span("replan"):
        with span("solve"):
            ...

records under ``replan`` and ``replan.solve``.  The context manager yields
the :class:`Span`, whose ``elapsed`` (seconds) is set on exit — the direct
replacement for the hand-rolled ``perf_counter`` pairs the parallel executor
and the ablations previously carried.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro.obs.proctime import process_clock
from repro.obs.registry import ObsRegistry, default_registry

__all__ = ["Span", "span", "SPAN_METRIC", "SPAN_BUCKETS"]

SPAN_METRIC = "repro_span_seconds"

#: Span-duration buckets (seconds): model evaluations to full experiments.
SPAN_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 300.0,
)

_local = threading.local()


class Span:
    """One timed section; ``elapsed`` is populated when the span closes."""

    __slots__ = ("name", "path", "elapsed")

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        self.elapsed: float = 0.0


def _stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@contextmanager
def span(name: str, registry: ObsRegistry | None = None) -> Iterator[Span]:
    """Time a section and aggregate it into the registry as a histogram.

    ``registry`` defaults to the process-wide default registry.  The yielded
    :class:`Span` carries the measured ``elapsed`` seconds after exit, so
    callers needing the raw duration (e.g. shard reports) read it directly
    instead of re-timing.
    """
    stack = _stack()
    stack.append(name)
    path = ".".join(stack)
    out = Span(name, path)
    started = process_clock()
    try:
        yield out
    finally:
        out.elapsed = process_clock() - started
        stack.pop()
        target = registry if registry is not None else default_registry()
        target.histogram(
            SPAN_METRIC,
            "Wall-clock duration of profiled sections, labelled by span path.",
            labelnames=("span",),
            buckets=SPAN_BUCKETS,
        ).labels(path).observe(out.elapsed)
