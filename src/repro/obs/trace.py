"""Schema-versioned structured event tracing (JSONL).

Every event is one JSON object per line with a fixed envelope::

    {"v": 1, "seq": 17, "t": 42.5, "ev": "resume", ...payload}

* ``v`` — the schema version (:data:`SCHEMA_VERSION`);
* ``seq`` — a per-writer monotone sequence number (total order of emission);
* ``t`` — **simulation** minutes (or the replayed trace's clock).  Wall
  clock never enters a trace, so two runs of the same inputs — serial or
  parallel — emit byte-identical traces;
* ``ev`` — the event type, one of :data:`EVENT_SCHEMA`'s keys.

The payload fields per event type are declared in :data:`EVENT_SCHEMA` and
enforced both at emission (:class:`TraceWriter` validates by default) and at
ingestion (:func:`validate_trace_file`), so a trace that loads is a trace
every tool can replay.

:class:`NullTraceWriter` is the disabled-path stand-in: ``enabled`` is
``False`` and ``emit`` returns immediately, so instrumented hot paths cost
one branch (``if tracer is not None``) when tracing is off.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, Mapping

from repro.exceptions import TraceSchemaError

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "EVENT_SCHEMA",
    "EVENT_SCHEMAS",
    "TraceWriter",
    "NullTraceWriter",
    "validate_event",
    "validate_trace_file",
    "read_trace",
]

SCHEMA_VERSION = 4

_NUM = (int, float)
_OPT_NUM = (int, float, type(None))
_OPT_STR = (str, type(None))

#: Event type -> {field: allowed JSON types}.  Every field is required;
#: unknown payload fields are rejected at validation time.
EVENT_SCHEMA: dict[str, dict[str, tuple]] = {
    # Run lifecycle.
    "run_start": {"label": (str,)},
    "run_end": {"label": (str,)},
    # Deployment: one per controlled/served movie at run start and on
    # actuated re-plans.  ``predicted_hit`` is the analytic P(hit) when the
    # producer knows it, else null.
    "movie_config": {
        "movie": (int,),
        "name": (str,),
        "length": _NUM,
        "streams": (int,),
        "buffer_minutes": _NUM,
        "predicted_hit": _OPT_NUM,
    },
    # Session lifecycle (VODServer observer hooks).
    "session_start": {"movie": (int,), "length": _NUM},
    "session_end": {"movie": (int,)},
    # Batching: one restart attempt of a movie's partition schedule.
    "batch_restart": {"movie": (int,), "starved": (bool,)},
    # VCR operation lifecycle.  ``outcome`` is "ok", "denied" (phase-1
    # starvation) or "end_of_movie" (FF ran off the end).
    "vcr_begin": {"movie": (int,), "op": (str,), "duration": _NUM},
    "vcr_end": {"movie": (int,), "op": (str,), "outcome": (str,)},
    # Resume: hit/miss with the resume position and the matched partition's
    # restart time (null on a miss).
    "resume": {
        "movie": (int,),
        "hit": (bool,),
        "position": _NUM,
        "window_start": _OPT_NUM,
    },
    # Stream pool lifecycle; ``in_use`` is the pool-wide occupancy after the
    # transition.
    "stream_acquire": {"purpose": (str,), "in_use": (int,)},
    "stream_release": {"purpose": (str,), "in_use": (int,), "held_minutes": _NUM},
    # Control plane: one per controller tick, and one per actuated delta.
    # ``trace_id``/``parent_span`` (schema v4) link an actuation back to the
    # service request whose tick triggered it; null outside a request scope
    # (simulator replays, offline control runs).
    "replan_decision": {"outcome": (str,), "tick": (int,)},
    "plan_actuation": {
        "applied": (int,),
        "rejected": (int,),
        "trace_id": _OPT_STR,
        "parent_span": _OPT_STR,
    },
    # Analytic sweeps: one feasibility-frontier point (Figure-8 style).
    "frontier": {
        "name": (str,),
        "streams": (int,),
        "buffer_minutes": _NUM,
        "p_hit": _NUM,
        "feasible": (bool,),
    },
    # Fault injection (schema v2): one per applied fault.  ``magnitude`` is
    # kind-specific (capacity fraction, streams revoked, buffer fraction,
    # outage minutes); ``recovered`` marks the restoring edge of a
    # transient fault.
    "fault_injected": {"kind": (str,), "magnitude": _NUM, "recovered": (bool,)},
    # Graceful degradation (schema v2): the manager entered/left a shedding
    # level.  ``policy`` names the deepest shedding step taken
    # ("shed_vcr", "widen_restart", "collapse_partition", ...).
    "degradation_entered": {"level": (int,), "policy": (str,)},
    "degradation_exited": {"level": (int,)},
    # Parallel resilience (schema v2): a dead worker's shard was reassigned.
    # Diagnostic only — never part of a deterministic run trace, since its
    # presence depends on which process died.
    "worker_retry": {"shard": (int,), "attempt": (int,)},
    # Live admission service (schema v3).  ``t`` is the *service* clock in
    # minutes: the virtual clock in deterministic runs, scaled wall time in
    # live deployments.  ``kind`` is the request type from the wire protocol.
    # ``trace_id`` (schema v4) is the deterministic per-request id minted at
    # receipt; every event of one request's causal chain carries it.
    "request_received": {"kind": (str,), "session": (int,), "trace_id": (str,)},
    # One per routed request: the control plane's verdict.  ``decision`` is
    # "admit"/"batch"/"reject"/"deny"/"hit"/"miss"/"pong"/"closed"/"error".
    # Schema v4 adds the causal link (``trace_id``, ``parent_span`` naming
    # the span that produced the verdict) and the request's latency split:
    # ``queue_wait``/``engine_time`` are service-clock minutes spent queued
    # behind the in-flight limiter and inside the decision core (exactly 0.0
    # on a virtual clock, so deterministic traces stay byte-identical).
    "admission_decision": {
        "session": (int,),
        "movie": (int,),
        "kind": (str,),
        "decision": (str,),
        "reason": (str,),
        "trace_id": (str,),
        "parent_span": (str,),
        "queue_wait": _NUM,
        "engine_time": _NUM,
    },
    # A session left the registry.  ``reason`` is "completed" (client ended
    # it), "drained" (server shutdown), "dropped" (connection lost/stalled)
    # or "shed" (degradation revoked its stream).
    "session_closed": {"session": (int,), "movie": (int,), "reason": (str,)},
    # The bounded in-flight queue refused a request before routing.
    "backpressure_reject": {"kind": (str,), "in_flight": (int,), "limit": (int,)},
    # Graceful drain finished: every in-flight request answered and every
    # open session closed.
    "drain_complete": {"sessions_closed": (int,), "in_flight": (int,)},
    # SLO monitor (schema v4): a burn-rate alert changed state for one
    # objective ("p99_latency", "deny_rate").  ``breaching`` marks the
    # entering (true) or clearing (false) edge; ``burn_fast``/``burn_slow``
    # are the error-budget burn rates over the fast and slow windows at the
    # evaluation that flipped the edge; ``value`` is the objective's observed
    # reading (p99 seconds, deny fraction).  ``trace_id`` links the alert to
    # the request whose handling triggered the evaluation (null when the
    # monitor is evaluated outside a request scope).
    "slo_alert": {
        "objective": (str,),
        "severity": (str,),
        "breaching": (bool,),
        "burn_fast": _NUM,
        "burn_slow": _NUM,
        "value": _NUM,
        "trace_id": _OPT_STR,
    },
}

#: Event types introduced by each schema version after 1.
_EVENTS_ADDED: dict[int, frozenset[str]] = {
    2: frozenset(
        {"fault_injected", "degradation_entered", "degradation_exited", "worker_retry"}
    ),
    3: frozenset(
        {
            "request_received",
            "admission_decision",
            "session_closed",
            "backpressure_reject",
            "drain_complete",
        }
    ),
    4: frozenset({"slo_alert"}),
}

#: Payload fields added to *pre-existing* event types by later schema
#: versions: version -> event type -> field names.  Older versions validate
#: those events without the new fields, so v3 traces keep loading.
_FIELDS_ADDED: dict[int, dict[str, frozenset[str]]] = {
    4: {
        "request_received": frozenset({"trace_id"}),
        "admission_decision": frozenset(
            {"trace_id", "parent_span", "queue_wait", "engine_time"}
        ),
        "plan_actuation": frozenset({"trace_id", "parent_span"}),
    },
}


def _schema_for(version: int) -> dict[str, dict[str, tuple]]:
    """The event-type table as it stood at ``version``."""
    future_events: set[str] = set()
    for added_in, names in _EVENTS_ADDED.items():
        if added_in > version:
            future_events |= names
    table: dict[str, dict[str, tuple]] = {}
    for name, fields in EVENT_SCHEMA.items():
        if name in future_events:
            continue
        future_fields: set[str] = set()
        for added_in, per_event in _FIELDS_ADDED.items():
            if added_in > version:
                future_fields |= per_event.get(name, frozenset())
        table[name] = {
            field: types
            for field, types in fields.items()
            if field not in future_fields
        }
    return table


#: Schema version -> its event-type table.  Version ``N`` speaks every event
#: (and field) introduced at or before ``N``; readers accept any supported
#: version but a single file must be uniformly one version.
EVENT_SCHEMAS: dict[int, dict[str, dict[str, tuple]]] = {
    version: _schema_for(version) for version in range(1, SCHEMA_VERSION + 1)
}

SUPPORTED_VERSIONS: tuple[int, ...] = tuple(sorted(EVENT_SCHEMAS))

_ENVELOPE = ("v", "seq", "t", "ev")


def validate_event(
    obj: Mapping, line: int | None = None, version: int | None = None
) -> None:
    """Validate one decoded event object against the schema.

    ``version`` pins the expected schema version (used by file readers to
    reject mixed-version traces); ``None`` accepts any supported version.
    Raises :class:`~repro.exceptions.TraceSchemaError` naming the offending
    line (1-based, when given) and field.
    """
    where = f"line {line}: " if line is not None else ""
    for field in _ENVELOPE:
        if field not in obj:
            raise TraceSchemaError(f"{where}missing envelope field {field!r}")
    if obj["v"] not in EVENT_SCHEMAS:
        raise TraceSchemaError(
            f"{where}unsupported schema version {obj['v']!r} "
            f"(this reader speaks {list(SUPPORTED_VERSIONS)})"
        )
    if version is not None and obj["v"] != version:
        raise TraceSchemaError(
            f"{where}mixed-version trace: event has v={obj['v']!r} "
            f"but the file started with v={version}"
        )
    if not isinstance(obj["seq"], int) or isinstance(obj["seq"], bool):
        raise TraceSchemaError(f"{where}seq must be an integer, got {obj['seq']!r}")
    if not isinstance(obj["t"], (int, float)) or isinstance(obj["t"], bool):
        raise TraceSchemaError(f"{where}t must be a number, got {obj['t']!r}")
    event_type = obj["ev"]
    fields = EVENT_SCHEMAS[obj["v"]].get(event_type)
    if fields is None:
        raise TraceSchemaError(
            f"{where}unknown event type {event_type!r} for schema v{obj['v']}"
        )
    for name, types in fields.items():
        if name not in obj:
            raise TraceSchemaError(f"{where}{event_type}: missing field {name!r}")
        value = obj[name]
        # bool is an int subclass; only accept it where bool is declared.
        if isinstance(value, bool) and bool not in types:
            raise TraceSchemaError(
                f"{where}{event_type}.{name}: boolean not allowed, got {value!r}"
            )
        if not isinstance(value, types):
            raise TraceSchemaError(
                f"{where}{event_type}.{name}: expected "
                f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
            )
    extras = set(obj) - set(fields) - set(_ENVELOPE)
    if extras:
        raise TraceSchemaError(
            f"{where}{event_type}: unknown field(s) {sorted(extras)}"
        )


class TraceWriter:
    """Buffered JSONL event writer with emission-time schema validation.

    ``sink`` may be a path or an open text file.  Events are buffered
    (``buffer_events`` lines) and flushed on overflow, :meth:`flush` and
    :meth:`close`; the writer is a context manager.
    """

    enabled = True

    def __init__(
        self,
        sink: str | Path | IO[str],
        buffer_events: int = 256,
        validate: bool = True,
    ) -> None:
        if buffer_events < 1:
            raise TraceSchemaError(
                f"buffer_events must be >= 1, got {buffer_events}"
            )
        if isinstance(sink, (str, Path)):
            self._file: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._buffer: list[str] = []
        self._buffer_events = buffer_events
        self._validate = validate
        self._seq = 0
        self.events_emitted = 0

    def emit(self, event_type: str, t: float, **fields: object) -> None:
        """Append one event; ``t`` is simulation minutes, never wall clock."""
        obj: dict[str, object] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "t": float(t),
            "ev": event_type,
        }
        obj.update(fields)
        if self._validate:
            validate_event(obj)
        self._seq += 1
        self.events_emitted += 1
        self._buffer.append(json.dumps(obj, sort_keys=True))
        if len(self._buffer) >= self._buffer_events:
            self.flush()

    def flush(self) -> None:
        """Write buffered events through to the sink."""
        if self._buffer:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._file.flush()

    def close(self) -> None:
        """Flush and close (closes the file only if this writer opened it)."""
        self.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTraceWriter:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so instrumented code can skip event assembly
    entirely — the hot path pays exactly one attribute check.
    """

    enabled = False
    events_emitted = 0

    def emit(self, event_type: str, t: float, **fields: object) -> None:
        """Discard the event."""

    def flush(self) -> None:
        """No buffered state to flush."""

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "NullTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


def read_trace(path: str | Path) -> Iterator[dict]:
    """Iterate a trace file's events, validating each line.

    The first event's ``v`` fixes the file's schema version; every later
    event must carry the same one (a mixed-version file is two traces
    concatenated, and replaying it would silently mix schemas).  Raises
    :class:`~repro.exceptions.TraceSchemaError` naming the offending 1-based
    line on malformed JSON, schema violations or a version change.
    """
    file_version: int | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceSchemaError(
                    f"line {line_number}: invalid JSON ({exc.msg})"
                ) from exc
            if not isinstance(obj, dict):
                raise TraceSchemaError(
                    f"line {line_number}: expected a JSON object, got {type(obj).__name__}"
                )
            validate_event(obj, line=line_number, version=file_version)
            if file_version is None:
                file_version = obj["v"]
            yield obj


def validate_trace_file(path: str | Path) -> int:
    """Validate a whole trace file; returns the number of events.

    Also checks that ``seq`` is strictly increasing — the emission order is
    part of the contract tools replaying a trace rely on.
    """
    count = 0
    last_seq: int | None = None
    for event in read_trace(path):
        if last_seq is not None and event["seq"] <= last_seq:
            raise TraceSchemaError(
                f"seq regressed: {last_seq} -> {event['seq']} "
                f"(event #{count + 1})"
            )
        last_seq = event["seq"]
        count += 1
    return count
