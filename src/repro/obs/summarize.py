"""Replay a structured trace into a run report.

``repro-vod obs summarize TRACE.jsonl`` answers the paper's questions from
the recorded event stream alone:

* **observed vs. predicted P(hit)** per movie — resume hits/misses from
  ``resume`` events, a Wilson 95% interval around the observed rate, and
  the analytic prediction recorded in ``movie_config`` (when the producer
  knew it), flagged as inside/outside the interval;
* **VCR mix** — the realised FF/RW/PAU shares and denial counts;
* **stream occupancy timeline** — pool-wide occupancy integrated over
  equal time buckets from ``stream_acquire``/``stream_release`` events;
* batching and control-plane activity — restarts (and starved restarts),
  re-plan decisions and actuations, frontier sweeps;
* **service activity** (schema v3+) — request kinds, admission decisions,
  session close reasons, backpressure rejects and drains;
* **decision latency** (schema v4) — queue-wait/engine-time quantiles per
  decision from the ``admission_decision`` latency fields, and any
  ``slo_alert`` burn-rate transitions the run recorded.

:func:`reconstruct_request` inverts the other axis: given a v4 trace and a
``trace_id`` it collects that request's causal chain (arrival, any re-plan
it triggered, the decision, SLO alerts it tipped) as a
:class:`RequestChain` — the engine behind ``repro-vod obs trace --request``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.numerics.stats import normal_quantile
from repro.obs.trace import read_trace

__all__ = [
    "MovieSummary",
    "RequestChain",
    "TraceSummary",
    "reconstruct_request",
    "summarize_trace",
    "wilson_interval",
]


def wilson_interval(
    successes: int, total: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because resume counts per movie
    can be small and the rate can sit near 0 or 1.
    """
    if total <= 0:
        return (0.0, 1.0)
    z = normal_quantile(0.5 + confidence / 2.0)
    p = successes / total
    denom = 1.0 + z * z / total
    center = (p + z * z / (2 * total)) / denom
    half = (z / denom) * math.sqrt(p * (1.0 - p) / total + z * z / (4 * total * total))
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class MovieSummary:
    """Everything the trace says about one movie."""

    movie_id: int
    name: str = ""
    length: float | None = None
    streams: int | None = None
    buffer_minutes: float | None = None
    predicted_hit: float | None = None
    sessions_started: int = 0
    sessions_ended: int = 0
    resume_hits: int = 0
    resume_misses: int = 0
    vcr_ops: dict[str, int] = field(default_factory=dict)
    vcr_denied: int = 0
    restarts: int = 0
    restarts_starved: int = 0

    @property
    def resumes(self) -> int:
        """Total resolved resumes."""
        return self.resume_hits + self.resume_misses

    @property
    def observed_hit_rate(self) -> float | None:
        """Observed resume hit fraction (None before any resume)."""
        return self.resume_hits / self.resumes if self.resumes else None

    def hit_rate_ci(self, confidence: float = 0.95) -> tuple[float, float] | None:
        """Wilson interval around the observed hit rate."""
        if not self.resumes:
            return None
        return wilson_interval(self.resume_hits, self.resumes, confidence)

    @property
    def predicted_within_ci(self) -> bool | None:
        """Is the recorded analytic P(hit) inside the observed interval?"""
        if self.predicted_hit is None:
            return None
        interval = self.hit_rate_ci()
        if interval is None:
            return None
        low, high = interval
        return low <= self.predicted_hit <= high


@dataclass
class TraceSummary:
    """The reduced view of one trace, renderable as a text report."""

    events: int = 0
    label: str = ""
    start_minutes: float = 0.0
    end_minutes: float = 0.0
    movies: dict[int, MovieSummary] = field(default_factory=dict)
    #: ``[(bucket_end_minutes, time-averaged streams in use), ...]``
    occupancy_timeline: list[tuple[float, float]] = field(default_factory=list)
    peak_streams: int = 0
    stream_acquires: int = 0
    replan_decisions: dict[str, int] = field(default_factory=dict)
    actuations_applied: int = 0
    actuations_rejected: int = 0
    #: frontier sweep: name -> (points, feasible points, best feasible n)
    frontiers: dict[str, tuple[int, int, int | None]] = field(default_factory=dict)
    #: service activity (schema v3+): request kind -> count.
    requests: dict[str, int] = field(default_factory=dict)
    #: admission decisions: decision -> count.
    decisions: dict[str, int] = field(default_factory=dict)
    #: session close reason -> count (completed / drained / dropped / ...).
    close_reasons: dict[str, int] = field(default_factory=dict)
    backpressure_rejects: int = 0
    drained_sessions: int | None = None
    #: decision -> sorted-later list of (queue_wait + engine_time) minutes
    #: from v4 ``admission_decision`` events.
    decision_latencies: dict[str, list[float]] = field(default_factory=dict)
    #: (objective, severity) -> count of ``slo_alert`` transitions.
    slo_alerts: dict[tuple[str, str], int] = field(default_factory=dict)

    def movie(self, movie_id: int) -> MovieSummary:
        """Get-or-create one movie's summary bucket."""
        if movie_id not in self.movies:
            self.movies[movie_id] = MovieSummary(movie_id, name=f"movie{movie_id}")
        return self.movies[movie_id]

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def summary_lines(self) -> list[str]:
        """The human-readable report block the CLI prints."""
        lines = [
            f"trace: {self.events} events over "
            f"[{self.start_minutes:g}, {self.end_minutes:g}] min"
            + (f" ({self.label})" if self.label else "")
        ]
        for movie in sorted(self.movies.values(), key=lambda m: m.movie_id):
            lines.extend(self._movie_lines(movie))
        if self.occupancy_timeline:
            lines.append(
                f"stream occupancy     : peak {self.peak_streams}, "
                f"{self.stream_acquires} acquisitions"
            )
            timeline = "  ".join(
                f"{end:g}min:{mean:.1f}" for end, mean in self.occupancy_timeline
            )
            lines.append(f"occupancy timeline   : {timeline}")
        if self.replan_decisions:
            decisions = ", ".join(
                f"{outcome}={count}"
                for outcome, count in sorted(self.replan_decisions.items())
            )
            lines.append(f"re-plan decisions    : {decisions}")
        if self.actuations_applied or self.actuations_rejected:
            lines.append(
                f"plan actuations      : applied {self.actuations_applied}, "
                f"rejected {self.actuations_rejected}"
            )
        for name, (points, feasible, best) in sorted(self.frontiers.items()):
            best_text = f"best n={best}" if best is not None else "no feasible point"
            lines.append(
                f"frontier {name:<12}: {points} points, {feasible} feasible, {best_text}"
            )
        lines.extend(self._service_lines())
        return lines

    def _service_lines(self) -> list[str]:
        """The live-service block (schema v3+ events), empty for sim traces."""
        lines: list[str] = []
        if self.requests:
            kinds = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.requests.items())
            )
            lines.append(f"service requests     : {kinds}")
        if self.decisions:
            decisions = ", ".join(
                f"{decision}={count}"
                for decision, count in sorted(self.decisions.items())
            )
            lines.append(f"service decisions    : {decisions}")
        if self.close_reasons:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.close_reasons.items())
            )
            lines.append(f"sessions closed      : {reasons}")
        if self.backpressure_rejects:
            lines.append(f"backpressure rejects : {self.backpressure_rejects}")
        if self.drained_sessions is not None:
            lines.append(f"drain                : {self.drained_sessions} sessions")
        for decision in sorted(self.decision_latencies):
            latencies = self.decision_latencies[decision]
            p50 = _nearest_rank(latencies, 0.50) * 60e3
            p99 = _nearest_rank(latencies, 0.99) * 60e3
            lines.append(
                f"decision latency     : {decision}: p50 {p50:.3f} ms, "
                f"p99 {p99:.3f} ms over {len(latencies)} decisions"
            )
        if self.slo_alerts:
            alerts = ", ".join(
                f"{objective}/{severity}={count}"
                for (objective, severity), count in sorted(self.slo_alerts.items())
            )
            lines.append(f"SLO alerts           : {alerts}")
        return lines

    def _movie_lines(self, movie: MovieSummary) -> list[str]:
        head = f"movie {movie.movie_id} ({movie.name})"
        if movie.streams is not None and movie.buffer_minutes is not None:
            head += f": n={movie.streams}, B={movie.buffer_minutes:.1f} min"
        lines = [head]
        lines.append(
            f"  sessions           : {movie.sessions_started} started, "
            f"{movie.sessions_ended} ended"
        )
        if movie.resumes:
            rate = movie.observed_hit_rate or 0.0
            low, high = movie.hit_rate_ci() or (0.0, 1.0)
            text = (
                f"  resume P(hit)      : observed {rate:.4f} "
                f"[{low:.4f}, {high:.4f}] over {movie.resumes} resumes"
            )
            if movie.predicted_hit is not None:
                verdict = "within CI" if movie.predicted_within_ci else "OUTSIDE CI"
                text += f"; predicted {movie.predicted_hit:.4f} -> {verdict}"
            lines.append(text)
        elif movie.predicted_hit is not None:
            lines.append(
                f"  resume P(hit)      : predicted {movie.predicted_hit:.4f} "
                "(no resumes observed)"
            )
        total_ops = sum(movie.vcr_ops.values())
        if total_ops:
            mix = " / ".join(
                f"{op} {count / total_ops:.2f}"
                for op, count in sorted(movie.vcr_ops.items())
            )
            lines.append(
                f"  VCR mix            : {mix} over {total_ops} ops "
                f"(denied {movie.vcr_denied})"
            )
        if movie.restarts or movie.restarts_starved:
            lines.append(
                f"  batch restarts     : {movie.restarts} "
                f"(starved {movie.restarts_starved})"
            )
        return lines

    def render(self) -> str:
        """The full report as one string."""
        return "\n".join(self.summary_lines())


def _nearest_rank(values: list[float], q: float) -> float:
    """Nearest-rank quantile (rank ``ceil(q*N)``) over raw observations.

    The same definition :meth:`LoadReport.latency_percentile` and
    :meth:`Histogram.quantile` use, so every latency readout in the repo
    agrees on what a p99 is.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


class _OccupancyIntegrator:
    """Integrates pool-wide occupancy over the trace's time axis."""

    def __init__(self) -> None:
        self.samples: list[tuple[float, int]] = []

    def record(self, t: float, in_use: int) -> None:
        self.samples.append((t, in_use))

    def timeline(
        self, start: float, end: float, buckets: int = 8
    ) -> list[tuple[float, float]]:
        if not self.samples or end <= start:
            return []
        width = (end - start) / buckets
        edges = [start + width * (index + 1) for index in range(buckets)]
        areas = [0.0] * buckets
        level = 0
        last_t = start
        samples = self.samples + [(end, self.samples[-1][1])]
        for t, in_use in samples:
            t = min(max(t, start), end)
            self._spread(areas, edges, width, last_t, t, level)
            level = in_use
            last_t = t
        return [
            (edge, area / width if width > 0 else 0.0)
            for edge, area in zip(edges, areas)
        ]

    @staticmethod
    def _spread(
        areas: list[float],
        edges: list[float],
        width: float,
        t0: float,
        t1: float,
        level: int,
    ) -> None:
        if t1 <= t0 or width <= 0.0:
            return
        for index, edge in enumerate(edges):
            bucket_start = edge - width
            lo = max(t0, bucket_start)
            hi = min(t1, edge)
            if hi > lo:
                areas[index] += level * (hi - lo)


def summarize_trace(
    source: str | Path | Iterable[Mapping], timeline_buckets: int = 8
) -> TraceSummary:
    """Reduce a trace (path or iterable of decoded events) to a summary."""
    if isinstance(source, (str, Path)):
        events: Iterable[Mapping] = read_trace(source)
    else:
        events = source
    summary = TraceSummary()
    occupancy = _OccupancyIntegrator()
    first_t: float | None = None
    last_t = 0.0
    frontier_raw: dict[str, list[tuple[int, bool]]] = {}
    for event in events:
        summary.events += 1
        t = float(event["t"])
        if first_t is None:
            first_t = t
        last_t = max(last_t, t)
        kind = event["ev"]
        if kind == "run_start":
            summary.label = str(event["label"])
        elif kind == "movie_config":
            movie = summary.movie(int(event["movie"]))
            movie.name = str(event["name"])
            movie.length = float(event["length"])
            movie.streams = int(event["streams"])
            movie.buffer_minutes = float(event["buffer_minutes"])
            predicted = event["predicted_hit"]
            movie.predicted_hit = None if predicted is None else float(predicted)
        elif kind == "session_start":
            summary.movie(int(event["movie"])).sessions_started += 1
        elif kind == "session_end":
            summary.movie(int(event["movie"])).sessions_ended += 1
        elif kind == "resume":
            movie = summary.movie(int(event["movie"]))
            if event["hit"]:
                movie.resume_hits += 1
            else:
                movie.resume_misses += 1
        elif kind == "vcr_begin":
            movie = summary.movie(int(event["movie"]))
            op = str(event["op"])
            movie.vcr_ops[op] = movie.vcr_ops.get(op, 0) + 1
        elif kind == "vcr_end":
            if event["outcome"] == "denied":
                summary.movie(int(event["movie"])).vcr_denied += 1
        elif kind == "batch_restart":
            movie = summary.movie(int(event["movie"]))
            if event["starved"]:
                movie.restarts_starved += 1
            else:
                movie.restarts += 1
        elif kind == "stream_acquire":
            summary.stream_acquires += 1
            in_use = int(event["in_use"])
            summary.peak_streams = max(summary.peak_streams, in_use)
            occupancy.record(t, in_use)
        elif kind == "stream_release":
            occupancy.record(t, int(event["in_use"]))
        elif kind == "replan_decision":
            outcome = str(event["outcome"])
            summary.replan_decisions[outcome] = (
                summary.replan_decisions.get(outcome, 0) + 1
            )
        elif kind == "plan_actuation":
            summary.actuations_applied += int(event["applied"])
            summary.actuations_rejected += int(event["rejected"])
        elif kind == "frontier":
            frontier_raw.setdefault(str(event["name"]), []).append(
                (int(event["streams"]), bool(event["feasible"]))
            )
        elif kind == "request_received":
            request_kind = str(event["kind"])
            summary.requests[request_kind] = summary.requests.get(request_kind, 0) + 1
        elif kind == "admission_decision":
            decision = str(event["decision"])
            summary.decisions[decision] = summary.decisions.get(decision, 0) + 1
            queue_wait = event.get("queue_wait")
            engine_time = event.get("engine_time")
            if queue_wait is not None and engine_time is not None:
                summary.decision_latencies.setdefault(decision, []).append(
                    float(queue_wait) + float(engine_time)
                )
        elif kind == "session_closed":
            reason = str(event["reason"])
            summary.close_reasons[reason] = summary.close_reasons.get(reason, 0) + 1
        elif kind == "backpressure_reject":
            summary.backpressure_rejects += 1
        elif kind == "drain_complete":
            summary.drained_sessions = int(event["sessions_closed"])
        elif kind == "slo_alert":
            key = (str(event["objective"]), str(event["severity"]))
            summary.slo_alerts[key] = summary.slo_alerts.get(key, 0) + 1
    summary.start_minutes = first_t or 0.0
    summary.end_minutes = last_t
    summary.occupancy_timeline = occupancy.timeline(
        summary.start_minutes, summary.end_minutes, timeline_buckets
    )
    for name, points in frontier_raw.items():
        feasible = [n for n, ok in points if ok]
        summary.frontiers[name] = (
            len(points),
            len(feasible),
            max(feasible) if feasible else None,
        )
    return summary


# ----------------------------------------------------------------------
# Per-request causal-chain reconstruction (schema v4).
# ----------------------------------------------------------------------


@dataclass
class RequestChain:
    """One request's causal chain, rebuilt from its ``trace_id``."""

    trace_id: str
    #: The chain's events in trace order (envelope fields included).
    events: list[Mapping] = field(default_factory=list)

    def _first(self, kind: str) -> Mapping | None:
        for event in self.events:
            if event["ev"] == kind:
                return event
        return None

    @property
    def request_kind(self) -> str | None:
        """The wire kind of the request (from ``request_received``)."""
        received = self._first("request_received")
        return None if received is None else str(received["kind"])

    @property
    def decision(self) -> str | None:
        """The verdict (from ``admission_decision``)."""
        decided = self._first("admission_decision")
        return None if decided is None else str(decided["decision"])

    @property
    def complete(self) -> bool:
        """True when both the arrival and the decision were traced."""
        return (
            self._first("request_received") is not None
            and self._first("admission_decision") is not None
        )

    @property
    def actuated(self) -> bool:
        """Did this request's arrival trigger a plan actuation?"""
        return self._first("plan_actuation") is not None

    def summary_lines(self) -> list[str]:
        """The timeline block ``repro-vod obs trace --request`` prints."""
        decided = self._first("admission_decision")
        head = f"request {self.trace_id}"
        if decided is not None:
            head += (
                f": kind={decided['kind']} session={decided['session']}"
                f" decision={decided['decision']}"
            )
        if not self.complete:
            head += "  [INCOMPLETE CHAIN]"
        lines = [head]
        for event in self.events:
            extras = []
            if event["ev"] == "admission_decision":
                extras.append(f"decision={event['decision']}")
                extras.append(f"span={event.get('parent_span')}")
                queue_wait = event.get("queue_wait")
                engine_time = event.get("engine_time")
                if queue_wait is not None and engine_time is not None:
                    extras.append(
                        f"queue={float(queue_wait) * 60e3:.3f}ms"
                        f" engine={float(engine_time) * 60e3:.3f}ms"
                    )
                extras.append(f"reason={event['reason']!r}")
            elif event["ev"] == "request_received":
                extras.append(f"kind={event['kind']}")
                extras.append(f"session={event['session']}")
            elif event["ev"] == "plan_actuation":
                extras.append(f"span={event.get('parent_span')}")
                extras.append(
                    f"applied={event['applied']} rejected={event['rejected']}"
                )
            elif event["ev"] == "slo_alert":
                extras.append(
                    f"{event['objective']}/{event['severity']}"
                    f" breaching={event['breaching']}"
                )
            lines.append(
                f"  t={float(event['t']):<10g} {event['ev']:<20}" + " ".join(extras)
            )
        return lines

    def render(self) -> str:
        """The timeline as one string."""
        return "\n".join(self.summary_lines())


def reconstruct_request(
    source: str | Path | Iterable[Mapping], trace_id: str
) -> RequestChain:
    """Collect every event carrying ``trace_id`` into a :class:`RequestChain`.

    Works on a trace path or an iterable of decoded events; events without a
    ``trace_id`` field (sim events, other versions) are skipped.  The chain
    may be empty when the id never appears — callers decide whether that is
    an error.
    """
    if isinstance(source, (str, Path)):
        events: Iterable[Mapping] = read_trace(source)
    else:
        events = source
    chain = RequestChain(trace_id=trace_id)
    for event in events:
        if event.get("trace_id") == trace_id:
            chain.events.append(event)
    return chain
