"""Labelled metric families with Prometheus-style and JSON exposition.

The observability registry is the single sink every layer reports into:
simulation counters and occupancies (exported after a run via
:mod:`repro.obs.adapters`), controller decision counters, cache telemetry,
and the profiling spans of :mod:`repro.obs.spans`.

Two exposition **tiers** keep the reproducibility contract intact:

* ``TIER_STABLE`` — metrics that are a pure function of the inputs (sim
  counters, controller decisions, frontier statistics).  These are what the
  default Prometheus/JSON exposition writes, so exported files are
  byte-identical across runs, worker counts and hosts.
* ``TIER_PROCESS`` — wall-clock and process-local telemetry (span timings,
  per-shard cache hit/miss, pids).  Excluded from the default exposition;
  opt in with ``include_process=True`` for benchmark artifacts and logs.

Exposition is deterministic by construction: families sort by name, children
by label values, and floats render via ``repr`` (shortest round-trip form).
"""

from __future__ import annotations

import math
import re
from typing import Dict, Sequence, Tuple

from repro.exceptions import ObservabilityError

__all__ = [
    "TIER_STABLE",
    "TIER_PROCESS",
    "DEFAULT_BUCKETS",
    "REQUEST_LATENCY_BUCKETS",
    "log_buckets",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "ObsRegistry",
    "default_registry",
    "set_default_registry",
]

TIER_STABLE = "stable"
TIER_PROCESS = "process"

#: Default histogram buckets (seconds): micro-benchmark to long-experiment.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def log_buckets(
    lower: float,
    upper: float,
    mantissas: Sequence[float] = (1.0, 2.0, 5.0),
) -> tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds.

    Walks the ``mantissa * 10^k`` ladder from the first edge at or above
    ``lower`` up to ``upper`` (always the final edge), so the buckets are a
    pure function of the arguments — every process, run and worker count
    builds the same ladder, keeping expositions byte-comparable.
    """
    if lower <= 0.0:
        raise ObservabilityError(f"log_buckets lower must be > 0, got {lower}")
    if upper <= lower:
        raise ObservabilityError(
            f"log_buckets upper must exceed lower, got [{lower}, {upper}]"
        )
    if not mantissas or any(not 1.0 <= m < 10.0 for m in mantissas):
        raise ObservabilityError(
            f"log_buckets mantissas must lie in [1, 10), got {mantissas!r}"
        )
    edges: list[float] = []
    exponent = math.floor(math.log10(lower)) - 1
    while True:
        for mantissa in sorted(mantissas):
            edge = mantissa * 10.0 ** exponent
            if edge < lower:
                continue
            if edge >= upper:
                edges.append(upper)
                return tuple(edges)
            edges.append(edge)
        exponent += 1


#: The request-latency ladder (seconds): 100 microseconds to one minute on
#: the 1-2-5 decade ladder.  Shared by the live service histogram and the
#: SLO monitor so their quantile readouts agree by construction.
REQUEST_LATENCY_BUCKETS: tuple[float, ...] = log_buckets(1e-4, 60.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Deterministic Prometheus float rendering."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """A monotonically increasing child metric."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative value."""
        return self._value


class Gauge:
    """A child metric that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """A fixed-bucket histogram child (cumulative buckets at exposition)."""

    __slots__ = ("_buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self._buckets = tuple(buckets)
        self._counts = [0] * len(self._buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._sum += value
        self._count += 1
        for index, upper in enumerate(self._buckets):
            if value <= upper:
                self._counts[index] += 1
                break

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """Per-bucket cumulative counts ``[(upper_bound, count), ...]``."""
        out = []
        running = 0
        for upper, count in zip(self._buckets, self._counts):
            running += count
            out.append((upper, running))
        return out

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile readout from the bucket counts.

        Returns the upper bound of the bucket holding the rank-``ceil(q*N)``
        observation — the same nearest-rank definition as
        :meth:`repro.service.loadgen.LoadReport.latency_percentile`, so the
        two readouts agree exactly whenever observations land on bucket
        edges, and the histogram otherwise overestimates by at most one
        bucket width.  Observations beyond the top bucket read as ``+Inf``;
        an empty histogram reads 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self._count))
        running = 0
        for upper, count in zip(self._buckets, self._counts):
            running += count
            if running >= rank:
                return upper
        return math.inf


class MetricFamily:
    """One named metric with a fixed label schema and typed children.

    With an empty label schema the family behaves as its single child:
    ``family.inc()`` / ``family.set()`` / ``family.observe()`` delegate to
    ``family.labels()``.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        tier: str,
        buckets: Sequence[float] | None = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ObservabilityError(f"invalid label name {label!r} for {name!r}")
        if tier not in (TIER_STABLE, TIER_PROCESS):
            raise ObservabilityError(f"unknown tier {tier!r} for {name!r}")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self.tier = tier
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, *values: object) -> object:
        """The child metric for one label-value tuple (created on first use)."""
        if len(values) != len(self.labelnames):
            raise ObservabilityError(
                f"{self.name}: expected {len(self.labelnames)} label values "
                f"({self.labelnames}), got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self._buckets or DEFAULT_BUCKETS)
            self._children[key] = child
        return child

    # Conveniences for label-less families.
    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self.labels().inc(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        """Set the label-less gauge child."""
        self.labels().set(value)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less gauge child."""
        self.labels().dec(amount)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        """Observe into the label-less histogram child."""
        self.labels().observe(value)  # type: ignore[attr-defined]

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        """Children sorted by label values (deterministic exposition order)."""
        return sorted(self._children.items())

    def _label_suffix(self, key: Tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""


class ObsRegistry:
    """A named collection of metric families with deterministic exposition.

    ``catalog`` optionally arms runtime catalog enforcement: registering any
    ``repro_``-prefixed family whose name is not in the given frozenset
    raises :class:`~repro.exceptions.ObservabilityError`.  Long-lived
    deployments (``repro-vod serve``) arm it with
    :data:`repro.obs.catalog.METRIC_CATALOG` so a typo'd or undeclared
    metric name fails loudly at registration instead of silently forking a
    new time series — the runtime half of the static ``metric-schema`` lint.
    """

    def __init__(self, catalog: frozenset[str] | None = None) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._catalog = catalog

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        tier: str,
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise ObservabilityError(
                    f"metric {name!r} re-registered with a different "
                    f"kind/label schema"
                )
            return family
        if (
            self._catalog is not None
            and name.startswith("repro_")
            and name not in self._catalog
        ):
            raise ObservabilityError(
                f"metric {name!r} is not declared in METRIC_CATALOG; "
                f"add it to repro.obs.catalog (and the pinned self-check) "
                f"before registering it at runtime"
            )
        family = MetricFamily(name, kind, help_text, labelnames, tier, buckets)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        tier: str = TIER_STABLE,
    ) -> MetricFamily:
        """Get-or-create a counter family."""
        return self._family(name, "counter", help_text, labelnames, tier)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        tier: str = TIER_STABLE,
    ) -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._family(name, "gauge", help_text, labelnames, tier)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        tier: str = TIER_PROCESS,
    ) -> MetricFamily:
        """Get-or-create a histogram family (process tier by default)."""
        return self._family(name, "histogram", help_text, labelnames, tier, buckets)

    def families(self, include_process: bool = False) -> list[MetricFamily]:
        """Registered families sorted by name, optionally with process tier."""
        return [
            family
            for name, family in sorted(self._families.items())
            if include_process or family.tier == TIER_STABLE
        ]

    # ------------------------------------------------------------------
    # Exposition.
    # ------------------------------------------------------------------
    def render_prometheus(self, include_process: bool = False) -> str:
        """Prometheus text exposition format (version 0.0.4).

        By default only ``TIER_STABLE`` families are written, so the output
        is reproducible across worker counts and hosts.
        """
        lines: list[str] = []
        for family in self.families(include_process):
            lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    for upper, count in child.cumulative():
                        suffix = family._label_suffix(
                            key, f'le="{_format_value(upper)}"'
                        )
                        lines.append(f"{family.name}_bucket{suffix} {count}")
                    suffix = family._label_suffix(key, 'le="+Inf"')
                    lines.append(f"{family.name}_bucket{suffix} {child.count}")
                    plain = family._label_suffix(key)
                    lines.append(
                        f"{family.name}_sum{plain} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{plain} {child.count}")
                else:
                    suffix = family._label_suffix(key)
                    value = child.value  # type: ignore[attr-defined]
                    lines.append(f"{family.name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""

    def to_json(self, include_process: bool = True) -> dict:
        """JSON-serialisable snapshot of the registry (artifact export)."""
        out: dict = {}
        for family in self.families(include_process):
            entry: dict = {
                "kind": family.kind,
                "help": family.help_text,
                "tier": family.tier,
                "labels": list(family.labelnames),
                "series": [],
            }
            for key, child in family.children():
                if family.kind == "histogram":
                    assert isinstance(child, Histogram)
                    entry["series"].append(
                        {
                            "labels": list(key),
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                [upper, count] for upper, count in child.cumulative()
                            ],
                        }
                    )
                else:
                    entry["series"].append(
                        {"labels": list(key), "value": child.value}  # type: ignore[attr-defined]
                    )
            out[family.name] = entry
        return out


#: Process-wide default registry (span timings, executor telemetry).
_DEFAULT = ObsRegistry()


def default_registry() -> ObsRegistry:
    """The process-wide default registry."""
    return _DEFAULT


def set_default_registry(registry: ObsRegistry) -> ObsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous
