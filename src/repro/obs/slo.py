"""SLO objectives with multi-window burn-rate alerting.

The paper's argument is about sustained operating behaviour — bounded
response-time waits and high resume hit ratios under heavy traffic — so the
live service watches itself against two service-level objectives:

* ``p99_latency`` — at least ``latency_target`` of requests answer within
  ``latency_threshold_seconds``;
* ``deny_rate`` — at least ``deny_target`` of ``session_start`` requests
  are admitted (batch or immediate) rather than rejected/denied.

Each objective has an **error budget** of ``1 - target``.  The monitor
keeps a sliding sample window per objective on the *service clock* and
computes the **burn rate** — observed error fraction divided by the budget —
over a fast and a slow window.  An alert fires only when *both* windows
burn above a threshold (the standard multi-window guard: the slow window
proves the problem is real, the fast window proves it is still happening),
with ``page`` above ``page_burn`` and ``warn`` above ``warn_burn``.

Alerts are edges, not levels: the monitor emits one ``slo_alert`` trace
event when an objective enters a severity and one (``breaching=false``)
when it clears, and mirrors its state into ``repro_slo_*`` metric families
so a live scrape shows the current burn.  A ``page`` on either objective
can arm :class:`~repro.vod.degradation.DegradationManager` shedding — the
engine decides that; this module only measures and reports.

Determinism: samples are keyed on service-clock minutes and evaluation is
pure arithmetic over them, so virtual-clock runs alert identically on every
run and worker count.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["SLOConfig", "SLOAlert", "SLOMonitor", "OBJECTIVES"]

#: The objectives the monitor evaluates, in evaluation order.
OBJECTIVES: tuple[str, ...] = ("p99_latency", "deny_rate")

#: ``session_start`` verdicts that spend the deny-rate error budget.
_DENY_DECISIONS = frozenset({"reject", "deny"})


@dataclass(frozen=True)
class SLOConfig:
    """Objectives, windows and burn thresholds for one monitor."""

    latency_threshold_seconds: float = 0.5
    latency_target: float = 0.99
    deny_target: float = 0.95
    fast_window_minutes: float = 5.0
    slow_window_minutes: float = 60.0
    page_burn: float = 2.0
    warn_burn: float = 1.0
    min_samples: int = 10

    def __post_init__(self) -> None:
        if self.latency_threshold_seconds <= 0.0:
            raise ConfigurationError(
                f"latency_threshold_seconds must be > 0, "
                f"got {self.latency_threshold_seconds}"
            )
        for name in ("latency_target", "deny_target"):
            target = getattr(self, name)
            if not 0.0 < target < 1.0:
                raise ConfigurationError(
                    f"{name} must be in (0, 1), got {target}"
                )
        if not 0.0 < self.fast_window_minutes <= self.slow_window_minutes:
            raise ConfigurationError(
                f"windows must satisfy 0 < fast <= slow, got "
                f"{self.fast_window_minutes}/{self.slow_window_minutes}"
            )
        if not 0.0 < self.warn_burn <= self.page_burn:
            raise ConfigurationError(
                f"burn thresholds must satisfy 0 < warn <= page, got "
                f"{self.warn_burn}/{self.page_burn}"
            )
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )

    def budget(self, objective: str) -> float:
        """The objective's error budget (allowed error fraction)."""
        if objective == "p99_latency":
            return 1.0 - self.latency_target
        if objective == "deny_rate":
            return 1.0 - self.deny_target
        raise ConfigurationError(f"unknown SLO objective {objective!r}")


@dataclass(frozen=True)
class SLOAlert:
    """One alert edge: an objective entered or left a severity."""

    objective: str
    severity: str
    breaching: bool
    burn_fast: float
    burn_slow: float
    value: float


class _ObjectiveState:
    """Sliding samples and current severity for one objective.

    The slow-window deque holds every live sample; the fast window is a
    second deque over the same stream with its own eviction horizon.  Both
    carry running (total, bad) tallies so each decision costs O(1)
    amortised — the monitor sits on the admission hot path and must not
    rescan its windows per request.
    """

    __slots__ = (
        "slow", "fast", "slow_bad", "fast_bad",
        "severity", "burn_fast", "burn_slow",
    )

    def __init__(self) -> None:
        #: (t_minutes, bad, value) — value is the latency (seconds) for the
        #: latency objective, 1.0/0.0 for the deny objective.
        self.slow: Deque[Tuple[float, bool, float]] = deque()
        self.fast: Deque[Tuple[float, bool, float]] = deque()
        self.slow_bad = 0
        self.fast_bad = 0
        self.severity: str | None = None
        self.burn_fast = 0.0
        self.burn_slow = 0.0

    def append(self, sample: Tuple[float, bool, float]) -> None:
        self.slow.append(sample)
        self.fast.append(sample)
        if sample[1]:
            self.slow_bad += 1
            self.fast_bad += 1

    def evict(self, now: float, fast_window: float, slow_window: float) -> None:
        slow_cutoff = now - slow_window
        while self.slow and self.slow[0][0] < slow_cutoff:
            if self.slow.popleft()[1]:
                self.slow_bad -= 1
        fast_cutoff = now - fast_window
        while self.fast and self.fast[0][0] < fast_cutoff:
            if self.fast.popleft()[1]:
                self.fast_bad -= 1

    def value(self, objective: str) -> float:
        """The objective's observed fast-window reading (on demand only —
        the p99 sort is too costly for the per-request path)."""
        if not self.fast:
            return 0.0
        if objective == "p99_latency":
            return _nearest_rank([value for _, _, value in self.fast], 0.99)
        return self.fast_bad / len(self.fast)


def _nearest_rank(values: list[float], q: float) -> float:
    """Nearest-rank quantile (the LoadReport/histogram definition)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


class SLOMonitor:
    """Evaluates the objectives over live decisions and reports edges.

    ``registry``/``tracer`` are optional: without them the monitor still
    evaluates and returns alerts (the engine may shed on them); with them it
    mirrors state into ``repro_slo_*`` families and ``slo_alert`` events.
    """

    def __init__(self, config: SLOConfig | None = None, registry=None, tracer=None):
        self.config = config or SLOConfig()
        self._tracer = tracer
        self._states = {objective: _ObjectiveState() for objective in OBJECTIVES}
        self.alerts_emitted = 0
        self._burn_gauge = None
        self._breaching_gauge = None
        self._alerts_counter = None
        if registry is not None:
            self._burn_gauge = registry.gauge(
                "repro_slo_burn_rate",
                "Error-budget burn rate per objective and window",
                labelnames=("objective", "window"),
            )
            self._breaching_gauge = registry.gauge(
                "repro_slo_breaching",
                "1 when the objective is in an alerting state (warn or page)",
                labelnames=("objective",),
            )
            self._alerts_counter = registry.counter(
                "repro_slo_alerts_total",
                "SLO alert edges by objective and severity",
                labelnames=("objective", "severity"),
            )

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def record_decision(
        self,
        t_minutes: float,
        kind: str,
        decision: str,
        latency_seconds: float,
        trace_id: str | None = None,
    ) -> list[SLOAlert]:
        """Feed one answered request; returns any alert edges it caused."""
        latency_state = self._states["p99_latency"]
        latency_state.append(
            (t_minutes, latency_seconds > self.config.latency_threshold_seconds,
             latency_seconds)
        )
        if kind == "session_start":
            deny_state = self._states["deny_rate"]
            bad = decision in _DENY_DECISIONS
            deny_state.append((t_minutes, bad, 1.0 if bad else 0.0))
        return self._evaluate(t_minutes, trace_id)

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def _evaluate(self, now: float, trace_id: str | None) -> list[SLOAlert]:
        alerts: list[SLOAlert] = []
        for objective in OBJECTIVES:
            state = self._states[objective]
            state.evict(
                now,
                self.config.fast_window_minutes,
                self.config.slow_window_minutes,
            )
            fast_total = len(state.fast)
            slow_total = len(state.slow)
            budget = self.config.budget(objective)
            state.burn_fast = (
                (state.fast_bad / fast_total) / budget if fast_total else 0.0
            )
            state.burn_slow = (
                (state.slow_bad / slow_total) / budget if slow_total else 0.0
            )

            severity: str | None = None
            if fast_total >= self.config.min_samples:
                floor = min(state.burn_fast, state.burn_slow)
                if floor >= self.config.page_burn:
                    severity = "page"
                elif floor >= self.config.warn_burn:
                    severity = "warn"

            if self._burn_gauge is not None:
                self._burn_gauge.labels(objective, "fast").set(state.burn_fast)
                self._burn_gauge.labels(objective, "slow").set(state.burn_slow)
            if self._breaching_gauge is not None:
                self._breaching_gauge.labels(objective).set(
                    1.0 if severity is not None else 0.0
                )

            if severity != state.severity:
                breaching = severity is not None
                reported = severity if breaching else state.severity
                alert = SLOAlert(
                    objective=objective,
                    severity=reported or "clear",
                    breaching=breaching,
                    burn_fast=state.burn_fast,
                    burn_slow=state.burn_slow,
                    value=state.value(objective),
                )
                alerts.append(alert)
                self.alerts_emitted += 1
                if self._alerts_counter is not None:
                    self._alerts_counter.labels(objective, alert.severity).inc()
                if self._tracer is not None and self._tracer.enabled:
                    self._tracer.emit(
                        "slo_alert",
                        now,
                        objective=alert.objective,
                        severity=alert.severity,
                        breaching=alert.breaching,
                        burn_fast=alert.burn_fast,
                        burn_slow=alert.burn_slow,
                        value=alert.value,
                        trace_id=trace_id,
                    )
                state.severity = severity
        return alerts

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Current per-objective state for the health endpoint."""
        out: dict = {}
        for objective in OBJECTIVES:
            state = self._states[objective]
            out[objective] = {
                "severity": state.severity or "ok",
                "burn_fast": round(state.burn_fast, 6),
                "burn_slow": round(state.burn_slow, 6),
                "value": round(state.value(objective), 6),
                "samples": len(state.slow),
            }
        return out
