"""Live scrape endpoint: on-demand exposition from a running service.

PR 3's observability was post-hoc — metrics files written after a run ends.
This module makes the same :class:`~repro.obs.registry.ObsRegistry` text
available *while the service runs*: :class:`ScrapeEndpoint` renders the
registry (and a health snapshot) on demand, and the admission protocol's
``metrics``/``health`` verbs serve it over the existing JSON-line socket —
no sidecar listener, no second port, no new dependency.

The other half is the client: :func:`parse_exposition` parses Prometheus
text back into typed samples so the load generator can cross-check its own
:class:`~repro.service.loadgen.LoadReport` against a live scrape, and
:func:`monotonic_regressions` diffs two scrapes for counter monotonicity
(the CI smoke check and ``repro-vod obs scrape --assert-monotonic``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.exceptions import ObservabilityError
from repro.obs.registry import ObsRegistry

__all__ = [
    "ScrapeEndpoint",
    "Exposition",
    "parse_exposition",
    "monotonic_regressions",
]

#: Scrape formats the endpoint can render.
_FORMATS = ("prometheus", "json")


class ScrapeEndpoint:
    """Renders a live registry (and health snapshot) on demand.

    ``health_source`` is an optional zero-argument callable returning a
    JSON-serialisable dict (the engine's view of itself: clock, sessions,
    stream occupancy, SLO state).  The endpoint merely renders; it never
    mutates the registry, so scraping is safe mid-request.
    """

    def __init__(
        self,
        registry: ObsRegistry,
        health_source: Callable[[], dict] | None = None,
    ) -> None:
        self._registry = registry
        self._health_source = health_source
        self.scrapes_served = 0

    def metrics(self, format: str = "prometheus", include_process: bool = True) -> str:
        """One exposition of the registry.

        Live scrapes default to ``include_process=True`` — an operator
        watching a running server wants wall-clock latency families too;
        the deterministic stable-tier contract applies to *exported files*,
        not to interactive reads.
        """
        if format not in _FORMATS:
            raise ObservabilityError(
                f"unknown scrape format {format!r} (expected one of {_FORMATS})"
            )
        self.scrapes_served += 1
        if format == "json":
            return json.dumps(
                self._registry.to_json(include_process=include_process),
                sort_keys=True,
            )
        return self._registry.render_prometheus(include_process=include_process)

    def health(self) -> dict:
        """The health snapshot (``{"status": "ok"}`` without a source)."""
        self.scrapes_served += 1
        if self._health_source is None:
            return {"status": "ok"}
        snapshot = dict(self._health_source())
        snapshot.setdefault("status", "ok")
        return snapshot


# ----------------------------------------------------------------------
# Client side: parsing and diffing expositions.
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: A parsed sample key: the label set as a sorted tuple of (name, value).
LabelKey = Tuple[Tuple[str, str], ...]


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(raw: str, line: int) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError:
        raise ObservabilityError(
            f"exposition line {line}: unparseable sample value {raw!r}"
        ) from None


@dataclass
class Exposition:
    """A parsed Prometheus text exposition.

    ``types`` maps family name -> declared kind (from ``# TYPE`` lines);
    ``samples`` maps *sample* name (``family``, ``family_bucket``, …) ->
    label key -> value.
    """

    types: Dict[str, str] = field(default_factory=dict)
    samples: Dict[str, Dict[LabelKey, float]] = field(default_factory=dict)

    def value(self, name: str, **labels: str) -> float | None:
        """The sample's value, or ``None`` if that series was not scraped."""
        key: LabelKey = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self.samples.get(name, {}).get(key)

    def family_total(self, name: str) -> float:
        """Sum of every series of the plainly-named sample ``name``."""
        return sum(self.samples.get(name, {}).values())

    def counter_samples(self) -> Dict[str, Dict[LabelKey, float]]:
        """Every sample that must be monotone across scrapes of one process:
        counter series plus histogram ``_bucket``/``_count``/``_sum``."""
        out: Dict[str, Dict[LabelKey, float]] = {}
        for family, kind in self.types.items():
            if kind == "counter" and family in self.samples:
                out[family] = self.samples[family]
            elif kind == "histogram":
                for suffix in ("_bucket", "_count", "_sum"):
                    sample = family + suffix
                    if sample in self.samples:
                        out[sample] = self.samples[sample]
        return out


def parse_exposition(text: str) -> Exposition:
    """Parse Prometheus text exposition (version 0.0.4) into samples.

    Strict enough to catch a truncated or interleaved scrape: every
    non-comment line must parse as ``name[{labels}] value`` and duplicate
    series are an error.
    """
    exposition = Exposition()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                exposition.types[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(
                f"exposition line {line_number}: unparseable sample {line!r}"
            )
        labels_raw = match.group("labels")
        key: LabelKey = ()
        if labels_raw:
            key = tuple(
                sorted(
                    (name, _unescape_label(value))
                    for name, value in _LABEL_PAIR_RE.findall(labels_raw)
                )
            )
        series = exposition.samples.setdefault(match.group("name"), {})
        if key in series:
            raise ObservabilityError(
                f"exposition line {line_number}: duplicate series "
                f"{match.group('name')}{dict(key)}"
            )
        series[key] = _parse_value(match.group("value"), line_number)
    return exposition


def monotonic_regressions(
    previous: Exposition, current: Exposition, prefix: str = "repro_"
) -> list[str]:
    """Counter samples that went backwards (or vanished) between scrapes.

    Two scrapes of one live process must never show a ``prefix``-named
    counter (or histogram bucket/count/sum) decreasing; a regression means
    the server restarted mid-test or the exposition is lying.  Returns
    human-readable descriptions, empty when the diff is clean.
    """
    regressions: list[str] = []
    current_counters = current.counter_samples()
    for sample, series in sorted(previous.counter_samples().items()):
        if not sample.startswith(prefix):
            continue
        for key, before in sorted(series.items()):
            after = current_counters.get(sample, {}).get(key)
            label_text = "{%s}" % ",".join(f'{k}="{v}"' for k, v in key)
            if after is None:
                regressions.append(f"{sample}{label_text} vanished")
            elif after < before:
                regressions.append(
                    f"{sample}{label_text} regressed {before} -> {after}"
                )
    return regressions
