"""Bridges between the existing telemetry carriers and :mod:`repro.obs`.

Three worlds already accumulate observations: the simulation-time
:class:`~repro.sim.metrics.MetricsRegistry` (hot path, deterministic), the
:class:`~repro.runtime.modelcache.ModelEvaluationCache` counters, and the
parallel executor's :class:`~repro.parallel.executor.ParallelOutcome`.  The
adapters here export each into an :class:`~repro.obs.registry.ObsRegistry`
after the fact — the hot paths keep their purpose-built carriers, the
exposition gains one common format.

:class:`TracingObserver` converts the :class:`~repro.vod.server.VODServer`
observer protocol into structured trace events.  It implements only the
hooks that map to events (partial observers are part of the protocol), and
reads time from the hook's simulation timestamp — never the wall clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import TIER_PROCESS, TIER_STABLE, ObsRegistry
from repro.obs.trace import NullTraceWriter, TraceWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.executor import ParallelOutcome
    from repro.runtime.modelcache import ModelEvaluationCache
    from repro.sim.metrics import MetricsRegistry

__all__ = [
    "TracingObserver",
    "export_sim_metrics",
    "export_cache_stats",
    "export_controller_counters",
    "export_parallel_outcome",
]


class TracingObserver:
    """VOD-server observer that writes structured trace events.

    Implements ``on_session_start`` / ``on_session_end`` / ``on_vcr`` /
    ``on_vcr_end`` / ``on_resume_detail``; the coarse ``on_resume`` and the
    high-frequency ``on_playback`` hooks are intentionally absent (the
    detailed resume event subsumes the former, playback segments carry no
    decision information).
    """

    def __init__(self, tracer: TraceWriter | NullTraceWriter) -> None:
        self._tracer = tracer

    def on_session_start(self, movie_id: int, length: float, now: float) -> None:
        """A viewer session was admitted to a popular movie."""
        self._tracer.emit("session_start", now, movie=movie_id, length=length)

    def on_session_end(self, movie_id: int, now: float) -> None:
        """A viewer session finished."""
        self._tracer.emit("session_end", now, movie=movie_id)

    def on_vcr(self, movie_id: int, operation, duration: float, now: float) -> None:
        """A VCR operation was issued (phase-1 begin)."""
        self._tracer.emit(
            "vcr_begin", now, movie=movie_id, op=operation.value, duration=duration
        )

    def on_vcr_end(self, movie_id: int, operation, outcome: str, now: float) -> None:
        """A VCR operation resolved (``ok``/``denied``/``end_of_movie``)."""
        self._tracer.emit(
            "vcr_end", now, movie=movie_id, op=operation.value, outcome=outcome
        )

    def on_resume_detail(
        self,
        movie_id: int,
        hit: bool,
        position: float,
        window_start: float | None,
        now: float,
    ) -> None:
        """A resume resolved: hit/miss, position, matched partition restart."""
        self._tracer.emit(
            "resume",
            now,
            movie=movie_id,
            hit=hit,
            position=position,
            window_start=window_start,
        )


def _metric_suffix(flat_name: str) -> tuple[str, str]:
    """Split a ``kind.rest`` sim-metric key into (kind, label value)."""
    kind, _, rest = flat_name.partition(".")
    return kind, rest


def export_sim_metrics(
    sim_metrics: "MetricsRegistry", now: float, registry: ObsRegistry
) -> None:
    """Export a simulation run's metrics into labelled stable-tier families.

    Counters land in ``repro_sim_events_total{event=...}``, tally means in
    ``repro_sim_tally_mean{tally=...}`` and time-weighted averages in
    ``repro_sim_time_avg{metric=...}``.  Simulation metrics are a pure
    function of the run's inputs, hence ``TIER_STABLE``.
    """
    counters = registry.counter(
        "repro_sim_events_total",
        "Simulation event counts since the warm-up reset.",
        labelnames=("event",),
        tier=TIER_STABLE,
    )
    means = registry.gauge(
        "repro_sim_tally_mean",
        "Per-observation sample means of simulation tallies.",
        labelnames=("tally",),
        tier=TIER_STABLE,
    )
    time_avgs = registry.gauge(
        "repro_sim_time_avg",
        "Time-weighted averages of simulation state variables.",
        labelnames=("metric",),
        tier=TIER_STABLE,
    )
    for flat_name, value in sorted(sim_metrics.snapshot(now).items()):
        kind, rest = _metric_suffix(flat_name)
        if kind == "count":
            counters.labels(rest).inc(value)
        elif kind == "mean":
            means.labels(rest).set(value)
        elif kind == "timeavg":
            time_avgs.labels(rest).set(value)


def export_controller_counters(counters, registry: ObsRegistry) -> None:
    """Export a control loop's decision counters (``TIER_STABLE``).

    ``counters`` is the ``{name: count}`` mapping of
    :meth:`~repro.runtime.controller.CapacityController.counters` — a pure
    function of the replayed telemetry, hence stable.
    """
    family = registry.counter(
        "repro_controller_decisions_total",
        "Control-loop tick outcomes (deltas and hysteresis skips).",
        labelnames=("decision",),
        tier=TIER_STABLE,
    )
    for name, value in sorted(counters.items()):
        family.labels(name).inc(value)


def export_cache_stats(
    cache: "ModelEvaluationCache", registry: ObsRegistry, scope: str = "driver"
) -> None:
    """Export a model-evaluation cache's counters (``TIER_PROCESS``).

    ``scope`` distinguishes multiple caches (driver vs shard workers) in one
    registry.
    """
    lookups = registry.gauge(
        "repro_model_cache_lookups",
        "Model-evaluation cache lookups by cache, scope and result.",
        labelnames=("scope", "cache", "result"),
        tier=TIER_PROCESS,
    )
    evictions = registry.gauge(
        "repro_model_cache_evictions",
        "Model-evaluation cache evictions by cache and scope.",
        labelnames=("scope", "cache"),
        tier=TIER_PROCESS,
    )
    entries = registry.gauge(
        "repro_model_cache_entries",
        "Model-evaluation cache current entry counts.",
        labelnames=("scope", "cache"),
        tier=TIER_PROCESS,
    )
    for name, stats in cache.stats().items():
        lookups.labels(scope, name, "hit").set(stats.hits)
        lookups.labels(scope, name, "miss").set(stats.misses)
        evictions.labels(scope, name).set(stats.evictions)
        entries.labels(scope, name).set(stats.entries)


def export_parallel_outcome(
    outcome: "ParallelOutcome", registry: ObsRegistry
) -> None:
    """Export a fan-out's shard telemetry (``TIER_PROCESS``).

    Per-shard wall-clock seconds, task counts and worker-local cache
    hit/miss deltas, plus driver-level totals.
    """
    shard_seconds = registry.gauge(
        "repro_parallel_shard_seconds",
        "Per-shard wall-clock seconds of the last fan-out.",
        labelnames=("shard",),
        tier=TIER_PROCESS,
    )
    shard_tasks = registry.gauge(
        "repro_parallel_shard_tasks",
        "Per-shard task counts of the last fan-out.",
        labelnames=("shard",),
        tier=TIER_PROCESS,
    )
    shard_cache = registry.gauge(
        "repro_parallel_shard_cache_lookups",
        "Per-shard worker-cache lookups by result.",
        labelnames=("shard", "result"),
        tier=TIER_PROCESS,
    )
    totals = registry.gauge(
        "repro_parallel_map_seconds",
        "Driver wall-clock seconds of the last fan-out.",
        tier=TIER_PROCESS,
    )
    workers = registry.gauge(
        "repro_parallel_workers",
        "Worker count of the last fan-out.",
        tier=TIER_PROCESS,
    )
    for shard in outcome.shards:
        label = str(shard.shard)
        shard_seconds.labels(label).set(shard.seconds)
        shard_tasks.labels(label).set(shard.tasks)
        shard_cache.labels(label, "hit").set(shard.cache_hits)
        shard_cache.labels(label, "miss").set(shard.cache_misses)
    totals.set(outcome.seconds)
    workers.set(outcome.workers)
