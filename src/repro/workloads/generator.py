"""Synthetic trace generation.

Generates the log a VOD front-end would produce under a given behaviour:
Poisson session arrivals, exponential think times between VCR operations,
operation types from the mix, durations from the per-operation
distributions, positions advanced by the operations themselves.  The
generator is sequential per session (no resource contention — that is the
server simulation's job); its purpose is producing realistic *measurement*
data for the fitting pipeline and replayable workloads for experiments.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.vcrop import VCROperation
from repro.exceptions import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.vod.movie import Movie, MovieCatalog
from repro.vod.vcr import VCRBehavior
from repro.workloads.events import SessionRecord, Trace, VCREventRecord

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Generates traces for a catalog under one behaviour specification."""

    def __init__(
        self,
        catalog: MovieCatalog,
        behavior: VCRBehavior,
        arrival_rate: float,
        seed: int = 1234,
    ) -> None:
        if arrival_rate <= 0.0:
            raise ConfigurationError(f"arrival rate must be positive, got {arrival_rate}")
        self._catalog = catalog
        self._behavior = behavior
        self._arrival_rate = arrival_rate
        self._seed = seed

    @classmethod
    def single_movie(
        cls,
        movie_length: float,
        behavior: VCRBehavior,
        arrival_rate: float,
        seed: int = 1234,
    ) -> "WorkloadGenerator":
        """Convenience for single-movie experiments (the Figure-7 setting)."""
        catalog = MovieCatalog(
            [Movie(0, "movie", movie_length, popularity=1.0)], popular_count=1
        )
        return cls(catalog, behavior, arrival_rate, seed=seed)

    def generate(self, horizon_minutes: float, replication: int = 0) -> Trace:
        """Generate all sessions arriving before ``horizon_minutes``."""
        if horizon_minutes <= 0.0:
            raise ConfigurationError(f"horizon must be positive, got {horizon_minutes}")
        streams = RandomStreams(self._seed).replicate(replication)
        rng_arrivals = streams.stream("arrivals")
        rng_movies = streams.stream("movies")
        rng_behavior = streams.stream("behavior")

        trace = Trace()
        clock = 0.0
        session_id = 0
        while True:
            clock += float(rng_arrivals.exponential(1.0 / self._arrival_rate))
            if clock >= horizon_minutes:
                break
            movie = self._catalog.sample(rng_movies)
            trace.add(self._generate_session(session_id, clock, movie, rng_behavior))
            session_id += 1
        return trace

    def _generate_session(
        self, session_id: int, arrival: float, movie: Movie, rng
    ) -> SessionRecord:
        behavior = self._behavior.truncated_to(movie.length)
        events: list[VCREventRecord] = []
        position = 0.0
        elapsed = 0.0
        completed = True
        while True:
            think = behavior.sample_think_time(rng)
            remaining = movie.length - position
            if think >= remaining:
                elapsed += remaining
                break
            elapsed += think
            position += think
            operation = behavior.sample_operation(rng)
            duration = behavior.sample_duration(operation, rng)
            wall = self._wall_time(operation, duration)
            if operation is VCROperation.FAST_FORWARD and duration >= movie.length - position:
                # The fast-forward runs off the end of the movie.
                wall = (movie.length - position) / 3.0
                events.append(
                    VCREventRecord(
                        at_minutes=elapsed, position=position,
                        operation=operation, duration=duration, wall_minutes=wall,
                    )
                )
                elapsed += wall
                break
            events.append(
                VCREventRecord(
                    at_minutes=elapsed, position=position,
                    operation=operation, duration=duration, wall_minutes=wall,
                )
            )
            if operation is VCROperation.FAST_FORWARD:
                position += duration
            elif operation is VCROperation.REWIND:
                position = max(0.0, position - duration)
            # Pause leaves the position unchanged.
            elapsed += wall
        return SessionRecord(
            session_id=session_id,
            arrival_minutes=arrival,
            movie_id=movie.movie_id,
            movie_length=movie.length,
            events=tuple(events),
            completed=completed,
            ended_at_minutes=elapsed,
        )

    def _wall_time(self, operation: VCROperation, duration: float) -> float:
        # Rates are unit multiples of playback; use the paper defaults.
        if operation is VCROperation.FAST_FORWARD:
            return duration / 3.0
        if operation is VCROperation.REWIND:
            return duration / 3.0
        return duration
