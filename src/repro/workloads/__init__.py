"""Workload traces: generation, serialisation, analysis and fitting.

The paper's model is driven by measured user statistics — "the pdf of VCR
requests can be obtained by statistics while the movie is displayed"
(Section 2.1) and "the values of these probabilities can be determined by
measuring user behavior" (Section 3.1.4).  This subpackage is that
measurement pipeline:

* :mod:`repro.workloads.events` — session/VCR trace records and a
  JSON-lines serialisable :class:`Trace` container;
* :mod:`repro.workloads.generator` — synthesise traces from a behaviour
  specification (Poisson sessions, per-operation durations);
* :mod:`repro.workloads.analysis` — summary statistics of a trace;
* :mod:`repro.workloads.fitting` — fit the mix, the think time and a
  duration distribution per operation back out of a trace (moment fits for
  the parametric families, empirical fallback, KS distances), producing the
  objects the hit model consumes.

Round trip: generate from a known behaviour, fit, and the fitted model's
``P(hit)`` matches the generator's — the property tests assert it.
"""

from repro.workloads.analysis import TraceStatistics, analyze_trace
from repro.workloads.events import SessionRecord, Trace, VCREventRecord
from repro.workloads.fitting import (
    FittedBehavior,
    fit_behavior,
    fit_duration_distribution,
    ks_distance,
)
from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "SessionRecord",
    "VCREventRecord",
    "Trace",
    "WorkloadGenerator",
    "TraceStatistics",
    "analyze_trace",
    "FittedBehavior",
    "fit_behavior",
    "fit_duration_distribution",
    "ks_distance",
]
