"""Trace records and the serialisable trace container.

A trace is what a deployed VOD front-end would log: one record per viewer
session (arrival time, movie, how the session ended) and one record per VCR
operation (type, duration, the movie position where it was issued).  Traces
serialise to JSON lines so they can be stored, shipped and replayed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.vcrop import VCROperation
from repro.exceptions import ReproError

__all__ = ["VCREventRecord", "SessionRecord", "Trace", "TraceFormatError"]


class TraceFormatError(ReproError, ValueError):
    """A trace file or record did not parse."""


@dataclass(frozen=True)
class VCREventRecord:
    """One interactive operation inside a session.

    ``wall_minutes`` is how long the operation itself lasted in wall-clock
    terms (duration divided by the FF/RW speed; equal to the duration for a
    pause) — a deployed log derives it from the operation's start/end
    timestamps, and the think-time estimator needs it to separate
    interaction gaps from operation time.
    """

    at_minutes: float          # wall-clock offset from session start
    position: float            # movie position when the operation was issued
    operation: VCROperation
    duration: float            # operation duration (movie-time for FF/RW)
    wall_minutes: float = 0.0  # wall-clock length of the operation itself

    def to_dict(self) -> dict:
        """JSON-serialisable form of the record."""
        data = asdict(self)
        data["operation"] = self.operation.value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "VCREventRecord":
        try:
            return cls(
                at_minutes=float(data["at_minutes"]),
                position=float(data["position"]),
                operation=VCROperation(data["operation"]),
                duration=float(data["duration"]),
                wall_minutes=float(data.get("wall_minutes", 0.0)),
            )
        except (KeyError, ValueError) as exc:
            raise TraceFormatError(f"bad VCR event record {data!r}: {exc}") from exc


@dataclass(frozen=True)
class SessionRecord:
    """One viewer session."""

    session_id: int
    arrival_minutes: float
    movie_id: int
    movie_length: float
    events: tuple[VCREventRecord, ...] = ()
    completed: bool = True
    ended_at_minutes: float | None = None  # total wall length of the session

    def playback_minutes(self) -> float:
        """Wall time spent in normal playback (session minus operations).

        Falls back to the last event time when the session end was not
        logged.  This is the exposure term of the censored think-time
        estimator in :mod:`repro.workloads.analysis`.
        """
        end = self.ended_at_minutes
        if end is None:
            end = self.events[-1].at_minutes if self.events else 0.0
        return max(0.0, end - sum(event.wall_minutes for event in self.events))

    def to_dict(self) -> dict:
        """JSON-serialisable form of the record."""
        return {
            "session_id": self.session_id,
            "arrival_minutes": self.arrival_minutes,
            "movie_id": self.movie_id,
            "movie_length": self.movie_length,
            "completed": self.completed,
            "ended_at_minutes": self.ended_at_minutes,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionRecord":
        try:
            return cls(
                session_id=int(data["session_id"]),
                arrival_minutes=float(data["arrival_minutes"]),
                movie_id=int(data["movie_id"]),
                movie_length=float(data["movie_length"]),
                completed=bool(data.get("completed", True)),
                ended_at_minutes=(
                    float(data["ended_at_minutes"])
                    if data.get("ended_at_minutes") is not None
                    else None
                ),
                events=tuple(
                    VCREventRecord.from_dict(event) for event in data.get("events", ())
                ),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise TraceFormatError(f"bad session record: {exc}") from exc


@dataclass
class Trace:
    """An ordered collection of sessions, serialisable as JSON lines."""

    sessions: list[SessionRecord] = field(default_factory=list)

    def add(self, session: SessionRecord) -> None:
        """Append a session to the trace."""
        self.sessions.append(session)

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[SessionRecord]:
        return iter(self.sessions)

    def events(self) -> Iterator[VCREventRecord]:
        """Every VCR event across all sessions, in session order."""
        for session in self.sessions:
            yield from session.events

    def events_of(self, operation: VCROperation) -> list[VCREventRecord]:
        """Every event of one operation type, in session order."""
        return [event for event in self.events() if event.operation is operation]

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise as JSON lines (one session per line)."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in self.sessions)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        trace = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"line {lineno}: invalid JSON: {exc}") from exc
            try:
                trace.add(SessionRecord.from_dict(data))
            except TraceFormatError as exc:
                # Record-level parse errors name the offending line too.
                raise TraceFormatError(f"line {lineno}: {exc}") from exc
        return trace

    def save(self, path: str | Path) -> None:
        """Write the JSON-lines form to a file."""
        Path(path).write_text(self.to_jsonl() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_jsonl(Path(path).read_text())
