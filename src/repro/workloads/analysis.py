"""Trace analysis: the summary statistics a fitting pass starts from."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.vcrop import VCROperation
from repro.exceptions import ConfigurationError
from repro.numerics.stats import SummaryStatistics, summarize
from repro.workloads.events import Trace

__all__ = ["TraceStatistics", "analyze_trace"]


@dataclass(frozen=True)
class TraceStatistics:
    """Everything measurable from a trace that the model consumes."""

    num_sessions: int
    num_events: int
    operation_counts: dict[VCROperation, int]
    operation_fractions: dict[VCROperation, float]
    duration_summaries: dict[VCROperation, SummaryStatistics | None]
    interarrival: SummaryStatistics | None
    gap_summary: SummaryStatistics | None
    mean_think_time: float | None
    position_quartiles: tuple[float, float, float] | None

    @property
    def arrival_rate(self) -> float:
        """Estimated sessions per minute (inverse mean interarrival)."""
        if self.interarrival is None or self.interarrival.mean == 0.0:
            raise ConfigurationError("trace has too few sessions to estimate a rate")
        return 1.0 / self.interarrival.mean

    def describe(self) -> str:
        """Single-line human-readable summary."""
        parts = [
            f"TraceStatistics({self.num_sessions} sessions, {self.num_events} VCR events",
        ]
        for op in VCROperation:
            fraction = self.operation_fractions.get(op, 0.0)
            parts.append(f"{op.value}={fraction:.2f}")
        return ", ".join(parts) + ")"


def analyze_trace(trace: Trace) -> TraceStatistics:
    """Reduce a trace to the statistics the fitting layer needs."""
    events = list(trace.events())
    counts = {op: 0 for op in VCROperation}
    durations: dict[VCROperation, list[float]] = {op: [] for op in VCROperation}
    for event in events:
        counts[event.operation] += 1
        durations[event.operation].append(event.duration)
    total_events = len(events)
    fractions = {
        op: (counts[op] / total_events if total_events else 0.0) for op in VCROperation
    }
    duration_summaries = {
        op: (summarize(values) if len(values) >= 2 else None)
        for op, values in durations.items()
    }

    arrivals = sorted(session.arrival_minutes for session in trace)
    interarrival = (
        summarize(np.diff(arrivals).tolist()) if len(arrivals) >= 3 else None
    )

    # Raw inter-event gaps (diagnostic only: they include the previous
    # operation's wall time and are right-censored by the movie end).
    gaps: list[float] = []
    for session in trace:
        previous = 0.0
        for event in session.events:
            gaps.append(event.at_minutes - previous)
            previous = event.at_minutes
    gap_summary = summarize(gaps) if len(gaps) >= 2 else None

    # Censoring-corrected think-time estimate.  With exponential think times
    # the MLE under right censoring is total exposure over event count:
    # exposure is the playback wall time per session (think time accrues
    # only during normal playback), and each VCR event is one observed
    # renewal.  This removes both biases of the naive gap mean.
    exposure = sum(session.playback_minutes() for session in trace)
    mean_think_time = exposure / total_events if total_events else None

    positions = [event.position for event in events]
    quartiles: tuple[float, float, float] | None = None
    if len(positions) >= 4:
        q1, q2, q3 = np.quantile(positions, [0.25, 0.5, 0.75])
        quartiles = (float(q1), float(q2), float(q3))

    return TraceStatistics(
        num_sessions=len(trace),
        num_events=total_events,
        operation_counts=counts,
        operation_fractions=fractions,
        duration_summaries=duration_summaries,
        interarrival=interarrival,
        gap_summary=gap_summary,
        mean_think_time=mean_think_time,
        position_quartiles=quartiles,
    )
