"""Fit VCR behaviour back out of a trace.

Implements the measurement path the paper assumes exists: estimate the
operation mix from event counts, the think time from inter-event gaps, and a
duration distribution per operation.  Candidate duration families are fitted
by the method of moments (exponential, gamma, lognormal, Weibull-by-mean,
uniform) plus the empirical distribution; the candidate with the smallest
Kolmogorov–Smirnov distance to the sample wins.  The result plugs directly
into :class:`~repro.core.hitmodel.HitProbabilityModel` and
:class:`~repro.vod.vcr.VCRBehavior`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hitmodel import VCRMix
from repro.core.vcrop import VCROperation
from repro.distributions import (
    DurationDistribution,
    EmpiricalDuration,
    ExponentialDuration,
    GammaDuration,
    LognormalDuration,
    UniformDuration,
    WeibullDuration,
)
from repro.distributions.deterministic import DeterministicDuration
from repro.exceptions import (
    ConfigurationError,
    FittingError,
    InsufficientDataError,
    NumericsError,
    ReproError,
)
from repro.vod.vcr import VCRBehavior
from repro.workloads.analysis import analyze_trace
from repro.workloads.events import Trace

__all__ = ["ks_distance", "fit_duration_distribution", "FittedBehavior", "fit_behavior"]

_MIN_SAMPLES = 8


def ks_distance(samples: Sequence[float], dist: DurationDistribution) -> float:
    """Kolmogorov–Smirnov distance between a sample and a distribution CDF."""
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ConfigurationError("KS distance needs at least one sample")
    n = data.size
    cdf_values = np.asarray([dist.cdf(float(x)) for x in data])
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(np.max(np.maximum(np.abs(upper - cdf_values), np.abs(cdf_values - lower))))


def _moment_candidates(samples: np.ndarray) -> list[DurationDistribution]:
    """Method-of-moments fits for every applicable parametric family.

    A family whose moment inversion rejects the sample (near-zero variance
    drives the gamma shape or lognormal sigma out of their numeric range) is
    silently dropped — the competition decides among whoever showed up.
    """
    mean = float(np.mean(samples))
    variance = float(np.var(samples, ddof=1))
    candidates: list[DurationDistribution] = []

    def attempt(factory) -> None:
        try:
            candidates.append(factory())
        except ReproError:
            pass

    if mean > 0.0:
        attempt(lambda: ExponentialDuration(mean))
        if variance > 0.0:
            # Gamma: shape = mean^2/var, scale = var/mean.
            attempt(lambda: GammaDuration(mean * mean / variance, variance / mean))
            cv = math.sqrt(variance) / mean
            if cv > 0.0:
                attempt(lambda: LognormalDuration.from_mean_cv(mean, cv))
            # Weibull: match the mean at a CV-informed shape (cheap heuristic:
            # shape from the CV of a Weibull via a two-point bracket).
            attempt(lambda: WeibullDuration.from_mean(mean, _weibull_shape_from_cv(cv)))
    lo, hi = float(np.min(samples)), float(np.max(samples))
    if hi > lo >= 0.0:
        attempt(lambda: UniformDuration(lo, hi))
    return candidates


def _weibull_shape_from_cv(cv: float) -> float:
    """Invert the Weibull CV(shape) relation by bisection."""
    from repro.numerics.rootfind import bisect

    def cv_of(shape: float) -> float:
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        return math.sqrt(max(0.0, g2 / (g1 * g1) - 1.0))

    target = min(max(cv, 0.05), 5.0)
    try:
        return bisect(lambda k: cv_of(k) - target, 0.2, 20.0, tol=1e-6)
    except (NumericsError, OverflowError):
        # No sign change in the bracket (CV outside the Weibull family's
        # reachable range) — fall back to the exponential special case.
        return 1.0


def fit_duration_distribution(
    samples: Sequence[float],
) -> tuple[DurationDistribution, float]:
    """Best-fitting duration distribution and its KS distance.

    Parametric moment fits compete against the empirical distribution; a
    parametric family wins ties (smaller description, smoother model).

    Degenerate samples are handled deterministically rather than crashing a
    live refit: too few samples raise :class:`InsufficientDataError` (a
    :class:`ConfigurationError` subclass), and a zero-variance sample — every
    duration identical, including all zero — falls back to the point mass
    :class:`DeterministicDuration` at that value with a KS distance of 0.
    """
    data = np.asarray(samples, dtype=float)
    if data.size < _MIN_SAMPLES:
        raise InsufficientDataError(
            f"need at least {_MIN_SAMPLES} samples to fit, got {data.size}"
        )
    if np.any(data < 0.0) or not np.all(np.isfinite(data)):
        raise FittingError("duration samples must be finite and non-negative")
    if float(np.max(data)) == float(np.min(data)):
        # Zero variance: no parametric family is identifiable and the
        # empirical CDF is a step — the point mass reproduces it exactly.
        return DeterministicDuration(float(data[0])), 0.0
    scored: list[tuple[float, int, DurationDistribution]] = []
    for index, candidate in enumerate(_moment_candidates(data)):
        try:
            scored.append((ks_distance(data, candidate), index, candidate))
        except ReproError:
            # A candidate whose CDF itself misbehaves on this sample (e.g. a
            # gamma with an astronomically large shape from near-constant
            # data) is disqualified, not fatal.
            continue
    if np.unique(data).size >= 2:
        empirical = EmpiricalDuration(data)
        # Penalise slightly so it only wins when parametrics genuinely fail.
        scored.append((ks_distance(data, empirical) + 0.02, len(scored), empirical))
    if not scored:
        raise FittingError("no duration family could be fitted to the sample")
    scored.sort(key=lambda item: (item[0], item[1]))
    best_distance, _, best = scored[0]
    return best, best_distance


@dataclass(frozen=True)
class FittedBehavior:
    """The outcome of fitting a trace: behaviour + fit diagnostics."""

    behavior: VCRBehavior
    ks_by_operation: dict[VCROperation, float]
    sample_counts: dict[VCROperation, int]
    estimated_arrival_rate: float | None

    def describe(self) -> str:
        """Single-line human-readable summary."""
        fits = ", ".join(
            f"{op.value}:{self.behavior.durations[op].describe()}"
            f"(KS={self.ks_by_operation[op]:.3f}, n={self.sample_counts[op]})"
            for op in VCROperation
        )
        return f"FittedBehavior(mix={self.behavior.mix}, {fits})"


def fit_behavior(trace: Trace, fallback_mean: float = 5.0) -> FittedBehavior:
    """Fit the complete VCR behaviour out of a trace.

    Operations with too few samples fall back to an exponential with
    ``fallback_mean`` (and a KS of NaN) rather than failing — a deployment
    bootstraps from sparse data.
    """
    stats = analyze_trace(trace)
    if stats.num_events == 0:
        raise ConfigurationError("trace contains no VCR events to fit")
    mix = VCRMix(
        p_ff=stats.operation_fractions[VCROperation.FAST_FORWARD],
        p_rw=stats.operation_fractions[VCROperation.REWIND],
        p_pause=stats.operation_fractions[VCROperation.PAUSE],
    )
    durations: dict[VCROperation, DurationDistribution] = {}
    ks_by_op: dict[VCROperation, float] = {}
    counts: dict[VCROperation, int] = {}
    for op in VCROperation:
        samples = [event.duration for event in trace.events_of(op)]
        counts[op] = len(samples)
        try:
            durations[op], ks_by_op[op] = fit_duration_distribution(samples)
        except FittingError:
            # Sparse or unusable samples (too few, non-finite from a corrupt
            # log): bootstrap from the fallback instead of dying mid-refit.
            durations[op] = ExponentialDuration(fallback_mean)
            ks_by_op[op] = math.nan
    think = stats.mean_think_time if stats.mean_think_time else 15.0
    behavior = VCRBehavior(mix=mix, durations=durations, mean_think_time=think)
    rate = None
    if stats.interarrival is not None and stats.interarrival.mean > 0.0:
        rate = 1.0 / stats.interarrival.mean
    return FittedBehavior(
        behavior=behavior,
        ks_by_operation=ks_by_op,
        sample_counts=counts,
        estimated_arrival_rate=rate,
    )
