"""The interval engine: exact hit-duration sets and their probabilities.

Section 3 of the paper reduces every resume outcome to geometry.  Fix a
viewer at movie position ``V_c`` whose partition's leading (first possible)
viewer is at ``V_f = V_c + d`` with in-partition offset ``d in [0, B/n]``.
With the Eq. (1) catch-up factors ``alpha`` (FF) and ``gamma`` (RW), the set
of operation durations ``x`` that end in a hit is a finite union of closed
intervals:

* **FF** — own partition ``[0, alpha*d]``; ``i``-th partition ahead
  ``[alpha*(i*l/n + d − B/n), alpha*(i*l/n + d)]``; everything clipped to
  ``[0, l − V_c]`` because fast-forwarding further reaches the end of the
  movie — itself a release event with interval ``[l − V_c, l]`` (Eq. 20).
* **RW** — ``i``-th partition behind (``i = 0`` is the viewer's own
  partition's trailing stretch) ``[gamma*(i*l/n − d), gamma*(i*l/n − d + B/n)]``
  clipped to ``[0, V_c]``: rewinding past the start of the movie counts as a
  miss, the boundary convention the paper states in Section 4.
* **PAU** — partitions sweep forward past the frozen viewer:
  ``[i*l/n − d, i*l/n − d + B/n]`` for ``i >= 0`` — periodic with period
  ``l/n``, independent of ``V_c``.

Unconditioning uses ``V_c ~ U[0, l]`` and ``d ~ U[0, B/n]`` (the paper's
approximations for ``P(V_c)`` and ``P(V_f)``).  The integral over ``V_c`` has
a closed form: with ``F`` the duration CDF, ``G(c) = ∫_0^c F`` and

    ``H(c) = G(min(c, l)) + (l − min(c, l)) * F(min(c, l))``

one has ``∫_0^l F(min(c, u)) du = H(c)``, so each clipped interval
``[lo, hi]`` contributes ``H(hi) − H(lo)`` to the ``V_c``-unconditioned sum
(for FF via the substitution ``u = l − V_c``; for RW via ``u = V_c``).  Only
the integral over ``d`` is evaluated numerically (Gauss–Legendre).  This is
algebraically identical to the paper's case-split equations (3)–(21) — the
test suite verifies the equivalence against the literal transcription in
:mod:`repro.core.fastforward` — but is O(n) per configuration instead of a
triply-nested quadrature, which is what makes the Section 5 sizing sweeps
cheap.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.catchup import ff_catchup_factor, rw_catchup_factor
from repro.core.parameters import SystemConfiguration
from repro.core.vcrop import VCROperation
from repro.distributions.base import DurationDistribution
from repro.exceptions import ConfigurationError
from repro.numerics.intervals import Interval, IntervalUnion
from repro.numerics.quadrature import _gl_nodes

__all__ = [
    "CdfTransform",
    "fastforward_hit_intervals",
    "fastforward_end_interval",
    "rewind_hit_intervals",
    "pause_hit_intervals",
    "hit_intervals",
    "hit_probability_at",
    "hit_probability",
    "end_probability",
    "DEFAULT_OFFSET_NODES",
    "DEFAULT_GRID_POINTS",
]

#: Gauss–Legendre nodes for the in-partition-offset integral.
DEFAULT_OFFSET_NODES = 32
#: Grid resolution for the precomputed CDF transform.
DEFAULT_GRID_POINTS = 4097


# ----------------------------------------------------------------------
# Hit-duration interval sets, per viewer state.
# ----------------------------------------------------------------------
def _validate_state(config: SystemConfiguration, v_c: float, offset_d: float) -> None:
    if not 0.0 <= v_c <= config.movie_length:
        raise ConfigurationError(
            f"viewer position {v_c} outside the movie [0, {config.movie_length}]"
        )
    if not -1e-12 <= offset_d <= config.partition_span + 1e-12:
        raise ConfigurationError(
            f"in-partition offset {offset_d} outside [0, {config.partition_span}]"
        )


def fastforward_hit_intervals(
    config: SystemConfiguration, v_c: float, offset_d: float
) -> IntervalUnion:
    """Durations producing a partition hit when fast-forwarding from ``V_c``.

    Returns the union of the own-partition window and the windows of every
    reachable partition ahead, clipped to ``[0, l − V_c]`` (beyond which the
    viewer reaches the movie end — see :func:`fastforward_end_interval`).
    """
    _validate_state(config, v_c, offset_d)
    alpha = ff_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    horizon = config.movie_length - v_c
    windows: list[Interval] = [Interval(0.0, min(alpha * offset_d, horizon))]
    i = 1
    while True:
        lo = alpha * (i * spacing + offset_d - span)
        if lo >= horizon:
            break
        hi = alpha * (i * spacing + offset_d)
        windows.append(Interval(lo, min(hi, horizon)))
        i += 1
    return IntervalUnion(windows)


def fastforward_end_interval(config: SystemConfiguration, v_c: float) -> Interval:
    """Durations that fast-forward past the movie end (Eq. 20's event)."""
    return Interval(config.movie_length - v_c, config.movie_length)


def rewind_hit_intervals(
    config: SystemConfiguration, v_c: float, offset_d: float
) -> IntervalUnion:
    """Durations producing a partition hit when rewinding from ``V_c``.

    ``i = 0`` is the trailing stretch of the viewer's own partition; larger
    ``i`` are partitions behind.  Clipped to ``[0, V_c]``: reaching the start
    of the movie is a miss under the paper's stated convention.
    """
    _validate_state(config, v_c, offset_d)
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    windows: list[Interval] = []
    i = 0
    while True:
        lo = gamma * (i * spacing - offset_d)
        if lo >= v_c:
            break
        hi = gamma * (i * spacing - offset_d + span)
        windows.append(Interval(max(0.0, lo), min(hi, v_c)))
        i += 1
    return IntervalUnion(windows)


def pause_hit_intervals(
    config: SystemConfiguration, offset_d: float, max_duration: float | None = None
) -> IntervalUnion:
    """Durations after which a paused viewer finds a partition over him.

    Independent of ``V_c``: buffer windows sweep forward past the frozen
    viewer with period ``l/n``.  ``max_duration`` defaults to the movie
    length ``l`` (the paper wraps longer pauses modulo ``l``; distributions
    are defined on ``[0, l]``).
    """
    if not -1e-12 <= offset_d <= config.partition_span + 1e-12:
        raise ConfigurationError(
            f"in-partition offset {offset_d} outside [0, {config.partition_span}]"
        )
    limit = config.movie_length if max_duration is None else max_duration
    span = config.partition_span
    spacing = config.partition_spacing
    windows: list[Interval] = []
    i = 0
    while True:
        lo = i * spacing - offset_d
        if lo >= limit:
            break
        hi = lo + span
        windows.append(Interval(max(0.0, lo), min(hi, limit)))
        i += 1
    return IntervalUnion(windows)


def hit_intervals(
    operation: VCROperation,
    config: SystemConfiguration,
    v_c: float,
    offset_d: float,
) -> IntervalUnion:
    """Dispatch to the per-operation hit set (partition hits only)."""
    if operation is VCROperation.FAST_FORWARD:
        return fastforward_hit_intervals(config, v_c, offset_d)
    if operation is VCROperation.REWIND:
        return rewind_hit_intervals(config, v_c, offset_d)
    return pause_hit_intervals(config, offset_d)


def hit_probability_at(
    operation: VCROperation,
    config: SystemConfiguration,
    duration: DurationDistribution,
    v_c: float,
    offset_d: float,
    include_end_hit: bool = True,
) -> float:
    """Hit probability conditioned on the full viewer state ``(V_c, d)``.

    For FF the end-of-movie release event (Eq. 20) is included unless
    ``include_end_hit`` is False.
    """
    mass = hit_intervals(operation, config, v_c, offset_d).measure_under(duration.cdf)
    if include_end_hit and operation is VCROperation.FAST_FORWARD:
        end = fastforward_end_interval(config, v_c)
        mass += duration.probability(end.lo, end.hi)
    return min(1.0, max(0.0, mass))


# ----------------------------------------------------------------------
# CDF transform: F, G = ∫F, and H(c) = ∫_0^l F(min(c, u)) du.
# ----------------------------------------------------------------------
class CdfTransform:
    """Precomputed grid evaluation of ``F``, ``G = ∫_0^c F`` and ``H``.

    Built once per (distribution, movie length) pair; every subsequent query
    is an O(log grid) interpolation.  ``H`` is the closed-form kernel of the
    ``V_c``-unconditioning described in the module docstring.
    """

    __slots__ = ("_duration", "_length", "_xs", "_fs", "_gs", "_g_total")

    def __init__(
        self,
        duration: DurationDistribution,
        movie_length: float,
        grid_points: int = DEFAULT_GRID_POINTS,
    ) -> None:
        if grid_points < 3:
            raise ConfigurationError(f"grid_points must be >= 3, got {grid_points}")
        self._duration = duration
        self._length = float(movie_length)
        self._xs = np.linspace(0.0, self._length, grid_points)
        self._fs = np.asarray([duration.cdf(float(x)) for x in self._xs])
        # Cumulative trapezoid for G(c) = ∫_0^c F(u) du.  Only G needs the
        # grid; F is evaluated exactly so point masses are not smeared.
        widths = np.diff(self._xs)
        areas = 0.5 * (self._fs[1:] + self._fs[:-1]) * widths
        self._gs = np.concatenate(([0.0], np.cumsum(areas)))
        self._g_total = float(self._gs[-1])

    @property
    def movie_length(self) -> float:
        """The movie length the transform was built for."""
        return self._length

    @property
    def total_mass(self) -> float:
        """``F(l)`` — 1.0 when the distribution is truncated to the movie."""
        return float(self._fs[-1])

    def F(self, c: float) -> float:
        """The exact CDF, saturated outside ``[0, l]``."""
        if c <= 0.0:
            return 0.0
        if c >= self._length:
            return float(self._fs[-1])
        return self._duration.cdf(c)

    def G(self, c: float) -> float:
        """``∫_0^c F(u) du`` for ``c`` clamped to ``[0, l]``."""
        if c <= 0.0:
            return 0.0
        if c >= self._length:
            return self._g_total
        return float(np.interp(c, self._xs, self._gs))

    def H(self, c: float) -> float:
        """``∫_0^l F(min(c, u)) du`` — monotone, with ``H(c >= l) = G(l)``."""
        if c <= 0.0:
            return 0.0
        if c >= self._length:
            return self._g_total
        return self.G(c) + (self._length - c) * self.F(c)

    def end_mass(self) -> float:
        """``∫_0^l (1 − F(u)) du = l − G(l)`` — the Eq. (20) numerator."""
        return self._length - self._g_total


# ----------------------------------------------------------------------
# Fully unconditioned hit probabilities.
# ----------------------------------------------------------------------
def _sum_ff(transform: CdfTransform, config: SystemConfiguration, d: float) -> float:
    """``∫_0^l P(partition hit | FF, V_c, d) dV_c`` via the H kernel."""
    alpha = ff_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    total = transform.H(alpha * d)  # own partition: window [0, alpha*d]
    i = 1
    while True:
        lo = alpha * (i * spacing + d - span)
        if lo >= length:
            break
        hi = alpha * (i * spacing + d)
        total += transform.H(hi) - transform.H(lo)
        i += 1
    return total


def _sum_rw(transform: CdfTransform, config: SystemConfiguration, d: float) -> float:
    """``∫_0^l P(partition hit | RW, V_c, d) dV_c`` via the H kernel."""
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    total = 0.0
    i = 0
    while True:
        lo = gamma * (i * spacing - d)
        if lo >= length:
            break
        hi = gamma * (i * spacing - d + span)
        total += transform.H(hi) - transform.H(max(0.0, lo))
        i += 1
    return total


def _sum_pause(transform: CdfTransform, config: SystemConfiguration, d: float) -> float:
    """``P(hit | PAU, d)`` — no ``V_c`` dependence, plain CDF masses."""
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    total = 0.0
    i = 0
    while True:
        lo = i * spacing - d
        if lo >= length:
            break
        hi = lo + span
        total += transform.F(hi) - transform.F(max(0.0, lo))
        i += 1
    return total


def _offset_average(
    func: Callable[[float], float], span: float, num_nodes: int
) -> float:
    """Average of ``func(d)`` over ``d ~ U[0, span]`` by Gauss–Legendre."""
    if span <= 0.0:
        return func(0.0)
    nodes, weights = _gl_nodes(num_nodes)
    half = 0.5 * span
    total = 0.0
    for node, weight in zip(nodes, weights):
        total += weight * func(half * (node + 1.0))
    return 0.5 * total  # (half * sum)/span == sum/2


def end_probability(
    config: SystemConfiguration,
    duration: DurationDistribution,
    transform: CdfTransform | None = None,
) -> float:
    """Eq. (20): probability a FF runs past the end of the movie."""
    transform = transform or CdfTransform(duration, config.movie_length)
    return transform.end_mass() / config.movie_length


def hit_probability(
    operation: VCROperation,
    config: SystemConfiguration,
    duration: DurationDistribution,
    *,
    include_end_hit: bool = True,
    num_offset_nodes: int = DEFAULT_OFFSET_NODES,
    transform: CdfTransform | None = None,
) -> float:
    """Unconditioned ``P(hit | operation)`` — Eq. (21) and its RW/PAU analogues.

    Parameters
    ----------
    operation:
        Which VCR function the viewer performed.
    config:
        The ``(l, n, B, rates)`` system geometry.
    duration:
        Distribution of the operation's duration.  The paper defines it on
        ``[0, l]``; pass a truncated distribution for exact conformance
        (:class:`~repro.core.hitmodel.HitProbabilityModel` does this
        automatically).
    include_end_hit:
        Count fast-forwarding past the end of the movie as a release event
        (the paper's Eq. (21) includes the ``P(end)`` term).
    num_offset_nodes:
        Gauss–Legendre nodes for the in-partition-offset integral.
    transform:
        Optional precomputed :class:`CdfTransform` (reused across calls by
        the model object).
    """
    transform = transform or CdfTransform(duration, config.movie_length)
    length = config.movie_length
    if operation is VCROperation.FAST_FORWARD:
        value = _offset_average(
            lambda d: _sum_ff(transform, config, d), config.partition_span, num_offset_nodes
        ) / length
        if include_end_hit:
            value += transform.end_mass() / length
    elif operation is VCROperation.REWIND:
        value = _offset_average(
            lambda d: _sum_rw(transform, config, d), config.partition_span, num_offset_nodes
        ) / length
    elif operation is VCROperation.PAUSE:
        value = _offset_average(
            lambda d: _sum_pause(transform, config, d), config.partition_span, num_offset_nodes
        )
    else:  # pragma: no cover - enum is closed
        raise ConfigurationError(f"unknown VCR operation {operation!r}")
    return float(min(1.0, max(0.0, value)))
