"""The interval engine: exact hit-duration sets and their probabilities.

Section 3 of the paper reduces every resume outcome to geometry.  Fix a
viewer at movie position ``V_c`` whose partition's leading (first possible)
viewer is at ``V_f = V_c + d`` with in-partition offset ``d in [0, B/n]``.
With the Eq. (1) catch-up factors ``alpha`` (FF) and ``gamma`` (RW), the set
of operation durations ``x`` that end in a hit is a finite union of closed
intervals:

* **FF** — own partition ``[0, alpha*d]``; ``i``-th partition ahead
  ``[alpha*(i*l/n + d − B/n), alpha*(i*l/n + d)]``; everything clipped to
  ``[0, l − V_c]`` because fast-forwarding further reaches the end of the
  movie — itself a release event with interval ``[l − V_c, l]`` (Eq. 20).
* **RW** — ``i``-th partition behind (``i = 0`` is the viewer's own
  partition's trailing stretch) ``[gamma*(i*l/n − d), gamma*(i*l/n − d + B/n)]``
  clipped to ``[0, V_c]``: rewinding past the start of the movie counts as a
  miss, the boundary convention the paper states in Section 4.
* **PAU** — partitions sweep forward past the frozen viewer:
  ``[i*l/n − d, i*l/n − d + B/n]`` for ``i >= 0`` — periodic with period
  ``l/n``, independent of ``V_c``.

Unconditioning uses ``V_c ~ U[0, l]`` and ``d ~ U[0, B/n]`` (the paper's
approximations for ``P(V_c)`` and ``P(V_f)``).  The integral over ``V_c`` has
a closed form: with ``F`` the duration CDF, ``G(c) = ∫_0^c F`` and

    ``H(c) = G(min(c, l)) + (l − min(c, l)) * F(min(c, l))``

one has ``∫_0^l F(min(c, u)) du = H(c)``, so each clipped interval
``[lo, hi]`` contributes ``H(hi) − H(lo)`` to the ``V_c``-unconditioned sum
(for FF via the substitution ``u = l − V_c``; for RW via ``u = V_c``).  Only
the integral over ``d`` is evaluated numerically (Gauss–Legendre).  This is
algebraically identical to the paper's case-split equations (3)–(21) — the
test suite verifies the equivalence against the literal transcription in
:mod:`repro.core.fastforward` — but is O(n) per configuration instead of a
triply-nested quadrature, which is what makes the Section 5 sizing sweeps
cheap.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.catchup import ff_catchup_factor, rw_catchup_factor
from repro.core.parameters import SystemConfiguration
from repro.core.vcrop import VCROperation
from repro.distributions.base import DurationDistribution
from repro.exceptions import ConfigurationError
from repro.numerics.backend import active_backend
from repro.numerics.intervals import Interval, IntervalUnion, measure_under_many
from repro.numerics.quadrature import _gl_nodes, gauss_legendre_nodes, lerp_many

__all__ = [
    "CdfTransform",
    "fastforward_hit_intervals",
    "fastforward_end_interval",
    "rewind_hit_intervals",
    "pause_hit_intervals",
    "hit_intervals",
    "hit_probability_at",
    "hit_probability_at_many",
    "hit_probability",
    "hit_probability_batch",
    "end_probability",
    "DEFAULT_OFFSET_NODES",
    "DEFAULT_GRID_POINTS",
]

#: Gauss–Legendre nodes for the in-partition-offset integral.
DEFAULT_OFFSET_NODES = 32
#: Grid resolution for the precomputed CDF transform.
DEFAULT_GRID_POINTS = 4097


# ----------------------------------------------------------------------
# Hit-duration interval sets, per viewer state.
# ----------------------------------------------------------------------
def _validate_state(config: SystemConfiguration, v_c: float, offset_d: float) -> None:
    if not 0.0 <= v_c <= config.movie_length:
        raise ConfigurationError(
            f"viewer position {v_c} outside the movie [0, {config.movie_length}]"
        )
    if not -1e-12 <= offset_d <= config.partition_span + 1e-12:
        raise ConfigurationError(
            f"in-partition offset {offset_d} outside [0, {config.partition_span}]"
        )


def fastforward_hit_intervals(
    config: SystemConfiguration, v_c: float, offset_d: float
) -> IntervalUnion:
    """Durations producing a partition hit when fast-forwarding from ``V_c``.

    Returns the union of the own-partition window and the windows of every
    reachable partition ahead, clipped to ``[0, l − V_c]`` (beyond which the
    viewer reaches the movie end — see :func:`fastforward_end_interval`).
    """
    _validate_state(config, v_c, offset_d)
    alpha = ff_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    horizon = config.movie_length - v_c
    windows: list[Interval] = [Interval(0.0, min(alpha * offset_d, horizon))]
    i = 1
    while True:
        lo = alpha * (i * spacing + offset_d - span)
        if lo >= horizon:
            break
        hi = alpha * (i * spacing + offset_d)
        windows.append(Interval(lo, min(hi, horizon)))
        i += 1
    return IntervalUnion(windows)


def fastforward_end_interval(config: SystemConfiguration, v_c: float) -> Interval:
    """Durations that fast-forward past the movie end (Eq. 20's event)."""
    return Interval(config.movie_length - v_c, config.movie_length)


def rewind_hit_intervals(
    config: SystemConfiguration, v_c: float, offset_d: float
) -> IntervalUnion:
    """Durations producing a partition hit when rewinding from ``V_c``.

    ``i = 0`` is the trailing stretch of the viewer's own partition; larger
    ``i`` are partitions behind.  Clipped to ``[0, V_c]``: reaching the start
    of the movie is a miss under the paper's stated convention.
    """
    _validate_state(config, v_c, offset_d)
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    windows: list[Interval] = []
    i = 0
    while True:
        lo = gamma * (i * spacing - offset_d)
        if lo >= v_c:
            break
        hi = gamma * (i * spacing - offset_d + span)
        windows.append(Interval(max(0.0, lo), min(hi, v_c)))
        i += 1
    return IntervalUnion(windows)


def pause_hit_intervals(
    config: SystemConfiguration, offset_d: float, max_duration: float | None = None
) -> IntervalUnion:
    """Durations after which a paused viewer finds a partition over him.

    Independent of ``V_c``: buffer windows sweep forward past the frozen
    viewer with period ``l/n``.  ``max_duration`` defaults to the movie
    length ``l`` (the paper wraps longer pauses modulo ``l``; distributions
    are defined on ``[0, l]``).
    """
    if not -1e-12 <= offset_d <= config.partition_span + 1e-12:
        raise ConfigurationError(
            f"in-partition offset {offset_d} outside [0, {config.partition_span}]"
        )
    limit = config.movie_length if max_duration is None else max_duration
    span = config.partition_span
    spacing = config.partition_spacing
    windows: list[Interval] = []
    i = 0
    while True:
        lo = i * spacing - offset_d
        if lo >= limit:
            break
        hi = lo + span
        windows.append(Interval(max(0.0, lo), min(hi, limit)))
        i += 1
    return IntervalUnion(windows)


def hit_intervals(
    operation: VCROperation,
    config: SystemConfiguration,
    v_c: float,
    offset_d: float,
) -> IntervalUnion:
    """Dispatch to the per-operation hit set (partition hits only)."""
    if operation is VCROperation.FAST_FORWARD:
        return fastforward_hit_intervals(config, v_c, offset_d)
    if operation is VCROperation.REWIND:
        return rewind_hit_intervals(config, v_c, offset_d)
    return pause_hit_intervals(config, offset_d)


def hit_probability_at(
    operation: VCROperation,
    config: SystemConfiguration,
    duration: DurationDistribution,
    v_c: float,
    offset_d: float,
    include_end_hit: bool = True,
) -> float:
    """Hit probability conditioned on the full viewer state ``(V_c, d)``.

    For FF the end-of-movie release event (Eq. 20) is included unless
    ``include_end_hit`` is False.
    """
    mass = hit_intervals(operation, config, v_c, offset_d).measure_under(duration.cdf)
    if include_end_hit and operation is VCROperation.FAST_FORWARD:
        end = fastforward_end_interval(config, v_c)
        mass += duration.probability(end.lo, end.hi)
    return min(1.0, max(0.0, mass))


# ----------------------------------------------------------------------
# CDF transform: F, G = ∫F, and H(c) = ∫_0^l F(min(c, u)) du.
# ----------------------------------------------------------------------
class CdfTransform:
    """Precomputed grid evaluation of ``F``, ``G = ∫_0^c F`` and ``H``.

    Built once per (distribution, movie length) pair; every subsequent query
    is an O(log grid) interpolation.  ``H`` is the closed-form kernel of the
    ``V_c``-unconditioning described in the module docstring.
    """

    __slots__ = (
        "_duration",
        "_length",
        "_xs",
        "_fs",
        "_gs",
        "_g_total",
        "_xs_list",
        "_gs_list",
    )

    def __init__(
        self,
        duration: DurationDistribution,
        movie_length: float,
        grid_points: int = DEFAULT_GRID_POINTS,
    ) -> None:
        if grid_points < 3:
            raise ConfigurationError(f"grid_points must be >= 3, got {grid_points}")
        self._duration = duration
        self._length = float(movie_length)
        self._xs = np.linspace(0.0, self._length, grid_points)
        self._fs = np.asarray([duration.cdf(float(x)) for x in self._xs])
        # Cumulative trapezoid for G(c) = ∫_0^c F(u) du.  Only G needs the
        # grid; F is evaluated exactly so point masses are not smeared.
        widths = np.diff(self._xs)
        areas = 0.5 * (self._fs[1:] + self._fs[:-1]) * widths
        self._gs = np.concatenate(([0.0], np.cumsum(areas)))
        self._g_total = float(self._gs[-1])
        # Plain-float copies of the grid, built lazily for the stdlib batch
        # kernels (identical values; list indexing beats ndarray scalar reads).
        self._xs_list: list[float] | None = None
        self._gs_list: list[float] | None = None

    @property
    def movie_length(self) -> float:
        """The movie length the transform was built for."""
        return self._length

    @property
    def total_mass(self) -> float:
        """``F(l)`` — 1.0 when the distribution is truncated to the movie."""
        return float(self._fs[-1])

    def F(self, c: float) -> float:
        """The exact CDF, saturated outside ``[0, l]``."""
        if c <= 0.0:
            return 0.0
        if c >= self._length:
            return float(self._fs[-1])
        return self._duration.cdf(c)

    def G(self, c: float) -> float:
        """``∫_0^c F(u) du`` for ``c`` clamped to ``[0, l]``."""
        if c <= 0.0:
            return 0.0
        if c >= self._length:
            return self._g_total
        return float(np.interp(c, self._xs, self._gs))

    def H(self, c: float) -> float:
        """``∫_0^l F(min(c, u)) du`` — monotone, with ``H(c >= l) = G(l)``."""
        if c <= 0.0:
            return 0.0
        if c >= self._length:
            return self._g_total
        return self.G(c) + (self._length - c) * self.F(c)

    def end_mass(self) -> float:
        """``∫_0^l (1 − F(u)) du = l − G(l)`` — the Eq. (20) numerator."""
        return self._length - self._g_total

    # ------------------------------------------------------------------
    # Batched evaluation.  Each *_many method reproduces the scalar method
    # element by element — same clamps, same interpolation arithmetic, same
    # CDF calls (routed through the distribution's ``cdf_batch``) — so the
    # batched hit kernels below stay byte-identical with the scalar path on
    # every backend.
    # ------------------------------------------------------------------
    def _grid_lists(self) -> tuple[list[float], list[float]]:
        if self._xs_list is None:
            self._xs_list = [float(x) for x in self._xs]
            self._gs_list = [float(g) for g in self._gs]
        assert self._gs_list is not None
        return self._xs_list, self._gs_list

    def F_many(self, cs: "Sequence[float] | np.ndarray") -> "list[float] | np.ndarray":
        """Batched :meth:`F` (exact CDF with saturation outside ``[0, l]``).

        ndarray in → ndarray out (vectorised clamps, one ``cdf_batch`` over
        the interior); sequence in → list out via the stdlib path.
        """
        length = self._length
        last = float(self._fs[-1])
        if isinstance(cs, np.ndarray):
            out = np.where(cs >= length, last, 0.0)
            mask = (cs > 0.0) & (cs < length)
            if mask.any():
                out[mask] = np.asarray(self._duration.cdf_batch(cs[mask]), dtype=float)
            return out
        out_list = [0.0] * len(cs)
        interior: list[float] = []
        positions: list[int] = []
        for i, c in enumerate(cs):
            if c <= 0.0:
                continue
            if c >= length:
                out_list[i] = last
                continue
            interior.append(c)
            positions.append(i)
        if interior:
            for i, value in zip(positions, self._duration.cdf_batch(interior)):
                out_list[i] = float(value)
        return out_list

    def G_many(self, cs: "Sequence[float] | np.ndarray") -> "list[float] | np.ndarray":
        """Batched :meth:`G` (``∫_0^c F``, clamped to ``[0, l]``)."""
        length = self._length
        if isinstance(cs, np.ndarray):
            out = np.where(cs >= length, self._g_total, 0.0)
            mask = (cs > 0.0) & (cs < length)
            if mask.any():
                out[mask] = np.interp(cs[mask], self._xs, self._gs)
            return out
        out_list = [0.0] * len(cs)
        interior: list[float] = []
        positions: list[int] = []
        for i, c in enumerate(cs):
            if c <= 0.0:
                continue
            if c >= length:
                out_list[i] = self._g_total
                continue
            interior.append(c)
            positions.append(i)
        if not interior:
            return out_list
        if active_backend() == "numpy":
            values = np.interp(np.asarray(interior), self._xs, self._gs).tolist()
        else:
            xs, gs = self._grid_lists()
            values = lerp_many(interior, xs, gs)
        for i, value in zip(positions, values):
            out_list[i] = float(value)
        return out_list

    def H_many(self, cs: "Sequence[float] | np.ndarray") -> "list[float] | np.ndarray":
        """Batched :meth:`H` — the hot call of the batched hit kernels.

        The interior expression is the scalar ``G(c) + (l − c) · F(c)`` with
        the interpolation and the multiply/add vectorised (exactly-rounded
        ops; the CDF itself goes through the distribution's ``cdf_batch``).
        """
        length = self._length
        if isinstance(cs, np.ndarray):
            out = np.where(cs >= length, self._g_total, 0.0)
            mask = (cs > 0.0) & (cs < length)
            if mask.any():
                interior_arr = cs[mask]
                fs_arr = np.asarray(self._duration.cdf_batch(interior_arr), dtype=float)
                out[mask] = (
                    np.interp(interior_arr, self._xs, self._gs)
                    + (length - interior_arr) * fs_arr
                )
            return out
        out_list = [0.0] * len(cs)
        interior: list[float] = []
        positions: list[int] = []
        for i, c in enumerate(cs):
            if c <= 0.0:
                continue
            if c >= length:
                out_list[i] = self._g_total
                continue
            interior.append(c)
            positions.append(i)
        if not interior:
            return out_list
        fs = self._duration.cdf_batch(interior)
        if active_backend() == "numpy":
            arr = np.asarray(interior)
            hs = (
                np.interp(arr, self._xs, self._gs)
                + (length - arr) * np.asarray(fs, dtype=float)
            ).tolist()
            for i, value in zip(positions, hs):
                out_list[i] = value
        else:
            xs, gs = self._grid_lists()
            gvals = lerp_many(interior, xs, gs)
            for i, c, g, f in zip(positions, interior, gvals, fs):
                out_list[i] = g + (length - c) * f
        return out_list


# ----------------------------------------------------------------------
# Fully unconditioned hit probabilities.
# ----------------------------------------------------------------------
def _sum_ff(transform: CdfTransform, config: SystemConfiguration, d: float) -> float:
    """``∫_0^l P(partition hit | FF, V_c, d) dV_c`` via the H kernel."""
    alpha = ff_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    total = transform.H(alpha * d)  # own partition: window [0, alpha*d]
    i = 1
    while True:
        lo = alpha * (i * spacing + d - span)
        if lo >= length:
            break
        hi = alpha * (i * spacing + d)
        total += transform.H(hi) - transform.H(lo)
        i += 1
    return total


def _sum_rw(transform: CdfTransform, config: SystemConfiguration, d: float) -> float:
    """``∫_0^l P(partition hit | RW, V_c, d) dV_c`` via the H kernel."""
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    total = 0.0
    i = 0
    while True:
        lo = gamma * (i * spacing - d)
        if lo >= length:
            break
        hi = gamma * (i * spacing - d + span)
        total += transform.H(hi) - transform.H(max(0.0, lo))
        i += 1
    return total


def _sum_pause(transform: CdfTransform, config: SystemConfiguration, d: float) -> float:
    """``P(hit | PAU, d)`` — no ``V_c`` dependence, plain CDF masses."""
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    total = 0.0
    i = 0
    while True:
        lo = i * spacing - d
        if lo >= length:
            break
        hi = lo + span
        total += transform.F(hi) - transform.F(max(0.0, lo))
        i += 1
    return total


def _offset_average(
    func: Callable[[float], float], span: float, num_nodes: int
) -> float:
    """Average of ``func(d)`` over ``d ~ U[0, span]`` by Gauss–Legendre."""
    if span <= 0.0:
        return func(0.0)
    nodes, weights = _gl_nodes(num_nodes)
    half = 0.5 * span
    total = 0.0
    for node, weight in zip(nodes, weights):
        total += weight * func(half * (node + 1.0))
    return 0.5 * total  # (half * sum)/span == sum/2


def end_probability(
    config: SystemConfiguration,
    duration: DurationDistribution,
    transform: CdfTransform | None = None,
) -> float:
    """Eq. (20): probability a FF runs past the end of the movie."""
    transform = transform or CdfTransform(duration, config.movie_length)
    return transform.end_mass() / config.movie_length


def hit_probability(
    operation: VCROperation,
    config: SystemConfiguration,
    duration: DurationDistribution,
    *,
    include_end_hit: bool = True,
    num_offset_nodes: int = DEFAULT_OFFSET_NODES,
    transform: CdfTransform | None = None,
) -> float:
    """Unconditioned ``P(hit | operation)`` — Eq. (21) and its RW/PAU analogues.

    Parameters
    ----------
    operation:
        Which VCR function the viewer performed.
    config:
        The ``(l, n, B, rates)`` system geometry.
    duration:
        Distribution of the operation's duration.  The paper defines it on
        ``[0, l]``; pass a truncated distribution for exact conformance
        (:class:`~repro.core.hitmodel.HitProbabilityModel` does this
        automatically).
    include_end_hit:
        Count fast-forwarding past the end of the movie as a release event
        (the paper's Eq. (21) includes the ``P(end)`` term).
    num_offset_nodes:
        Gauss–Legendre nodes for the in-partition-offset integral.
    transform:
        Optional precomputed :class:`CdfTransform` (reused across calls by
        the model object).
    """
    transform = transform or CdfTransform(duration, config.movie_length)
    length = config.movie_length
    if operation is VCROperation.FAST_FORWARD:
        value = _offset_average(
            lambda d: _sum_ff(transform, config, d), config.partition_span, num_offset_nodes
        ) / length
        if include_end_hit:
            value += transform.end_mass() / length
    elif operation is VCROperation.REWIND:
        value = _offset_average(
            lambda d: _sum_rw(transform, config, d), config.partition_span, num_offset_nodes
        ) / length
    elif operation is VCROperation.PAUSE:
        value = _offset_average(
            lambda d: _sum_pause(transform, config, d), config.partition_span, num_offset_nodes
        )
    else:  # pragma: no cover - enum is closed
        raise ConfigurationError(f"unknown VCR operation {operation!r}")
    return float(min(1.0, max(0.0, value)))


# ----------------------------------------------------------------------
# Batched unconditioned hit probabilities.
#
# One call evaluates a whole list of (n, B) configurations: every H/F
# argument of every offset node of every configuration is gathered into a
# single flat list, resolved with one CdfTransform batch call (one
# distribution-CDF batch, one interpolation pass), then reduced per
# configuration in exactly the order the scalar loops use — so the results
# are byte-identical to hit_probability() on every backend.
# ----------------------------------------------------------------------
def _offset_nodes(span: float, num_nodes: int) -> tuple[list[float], tuple[float, ...] | None]:
    """The offset-integral abscissae of ``_offset_average`` for one config.

    Returns ``(ds, weights)``; ``weights is None`` reproduces the degenerate
    ``span <= 0`` case (a single evaluation at ``d = 0``, no averaging).
    """
    if span <= 0.0:
        return [0.0], None
    nodes, weights = gauss_legendre_nodes(num_nodes)
    half = 0.5 * span
    return [half * (node + 1.0) for node in nodes], weights


def _ff_args_py(
    config: SystemConfiguration,
    ds: list[float],
    leads: list[float],
    his: list[float],
    los: list[float],
) -> list[int]:
    """Append FF arguments (lead + interval pairs) per node; return pair counts."""
    alpha = ff_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    counts: list[int] = []
    for d in ds:
        leads.append(alpha * d)
        count = 0
        i = 1
        while True:
            lo = alpha * (i * spacing + d - span)
            if lo >= length:
                break
            his.append(alpha * (i * spacing + d))
            los.append(lo)
            i += 1
            count += 1
        counts.append(count)
    return counts


def _rw_args_py(
    config: SystemConfiguration,
    ds: list[float],
    his: list[float],
    los: list[float],
) -> list[int]:
    """Append RW interval pairs per node; return pair counts."""
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    counts: list[int] = []
    for d in ds:
        count = 0
        i = 0
        while True:
            lo = gamma * (i * spacing - d)
            if lo >= length:
                break
            his.append(gamma * (i * spacing - d + span))
            los.append(max(0.0, lo))
            i += 1
            count += 1
        counts.append(count)
    return counts


def _pause_args_py(
    config: SystemConfiguration,
    ds: list[float],
    his: list[float],
    los: list[float],
) -> list[int]:
    """Append PAU interval pairs per node; return pair counts."""
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    counts: list[int] = []
    for d in ds:
        count = 0
        i = 0
        while True:
            lo = i * spacing - d
            if lo >= length:
                break
            his.append(lo + span)
            los.append(max(0.0, lo))
            i += 1
            count += 1
        counts.append(count)
    return counts


# The vectorised builders replicate the scalar loop arithmetic exactly:
# ``i * spacing`` over an exact-integer arange, then the same sequence of
# exactly-rounded +/-/* ops.  The loop's break condition is recovered from
# the (monotone) ``lo`` rows — ``(lo < length).sum()`` equals the scalar
# iteration count — with the row width doubled until it provably covers the
# break index of every offset node.
def _ff_args_np(
    config: SystemConfiguration, ds: list[float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[int]]:
    alpha = ff_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    d_arr = np.asarray(ds, dtype=float)
    leads = alpha * d_arr
    m = max(1, math.ceil((length / alpha + span) / spacing) + 3)
    while True:
        u = np.arange(1.0, m + 1.0) * spacing + d_arr[:, None]
        lo = alpha * (u - span)
        mask = lo < length
        if not mask[:, -1].any():
            break
        m *= 2
    counts = mask.sum(axis=1)
    hi = alpha * u
    return leads, hi[mask], lo[mask], counts.tolist()


def _rw_args_np(
    config: SystemConfiguration, ds: list[float]
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    d_arr = np.asarray(ds, dtype=float)
    m = max(1, math.ceil((length / gamma + span) / spacing) + 3)
    while True:
        u = np.arange(0.0, m) * spacing - d_arr[:, None]
        lo = gamma * u
        mask = lo < length
        if not mask[:, -1].any():
            break
        m *= 2
    counts = mask.sum(axis=1)
    hi = gamma * (u + span)
    return hi[mask], np.maximum(0.0, lo[mask]), counts.tolist()


def _pause_args_np(
    config: SystemConfiguration, ds: list[float]
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    span = config.partition_span
    spacing = config.partition_spacing
    length = config.movie_length
    d_arr = np.asarray(ds, dtype=float)
    m = max(1, math.ceil((length + span) / spacing) + 3)
    while True:
        lo = np.arange(0.0, m) * spacing - d_arr[:, None]
        mask = lo < length
        if not mask[:, -1].any():
            break
        m *= 2
    counts = mask.sum(axis=1)
    hi = lo + span
    return hi[mask], np.maximum(0.0, lo[mask]), counts.tolist()


def hit_probability_batch(
    operation: VCROperation,
    configs: Sequence[SystemConfiguration],
    duration: DurationDistribution,
    *,
    include_end_hit: bool = True,
    num_offset_nodes: int = DEFAULT_OFFSET_NODES,
    transform: CdfTransform | None = None,
) -> list[float]:
    """Batched :func:`hit_probability` over many configurations.

    Results are bit-for-bit equal to calling :func:`hit_probability` on each
    configuration — the scalar path remains the oracle; this entry point
    only changes *how many* quadrature arguments are resolved per call.

    Arguments are gathered into three flat streams (FF node leads, interval
    highs, interval lows), resolved with whole-stream ``H``/``F`` batches,
    differenced elementwise, and reduced per node with ``sum()`` — which adds
    left to right exactly like the scalar accumulation loops.
    """
    if not configs:
        return []
    transform = transform or CdfTransform(duration, configs[0].movie_length)
    is_ff = operation is VCROperation.FAST_FORWARD
    is_rw = operation is VCROperation.REWIND
    is_pause = operation is VCROperation.PAUSE
    if not (is_ff or is_rw or is_pause):  # pragma: no cover - enum is closed
        raise ConfigurationError(f"unknown VCR operation {operation!r}")
    resolve = transform.F_many if is_pause else transform.H_many

    plans: list[tuple[tuple[float, ...] | None, list[int]]] = []
    lead_vals: list[float] = []
    if active_backend() == "numpy":
        lead_parts: list[np.ndarray] = []
        hi_parts: list[np.ndarray] = []
        lo_parts: list[np.ndarray] = []
        for config in configs:
            ds, weights = _offset_nodes(config.partition_span, num_offset_nodes)
            if is_ff:
                leads, his, los, counts = _ff_args_np(config, ds)
                lead_parts.append(leads)
            elif is_rw:
                his, los, counts = _rw_args_np(config, ds)
            else:
                his, los, counts = _pause_args_np(config, ds)
            hi_parts.append(his)
            lo_parts.append(los)
            plans.append((weights, counts))
        hi_arr = np.concatenate(hi_parts)
        lo_arr = np.concatenate(lo_parts)
        # Empty intervals (span 0 collapses every [lo, hi] to a point) would
        # resolve to F(x) − F(x): exactly 0.0 for the pure elementwise F/H,
        # so skip resolving them at all — bit-identical, and a span-0 sweep
        # (pure batching, B = 0) costs nothing per interval.
        proper = hi_arr != lo_arr
        diff_arr = np.zeros(hi_arr.shape[0])
        if proper.any():
            hi_vals = np.asarray(resolve(hi_arr[proper]), dtype=float)
            lo_vals = np.asarray(resolve(lo_arr[proper]), dtype=float)
            diff_arr[proper] = hi_vals - lo_vals
        diffs = diff_arr.tolist()
        if is_ff:
            lead_vals = np.asarray(resolve(np.concatenate(lead_parts)), dtype=float).tolist()
    else:
        lead_args: list[float] = []
        hi_args: list[float] = []
        lo_args: list[float] = []
        for config in configs:
            ds, weights = _offset_nodes(config.partition_span, num_offset_nodes)
            if is_ff:
                counts = _ff_args_py(config, ds, lead_args, hi_args, lo_args)
            elif is_rw:
                counts = _rw_args_py(config, ds, hi_args, lo_args)
            else:
                counts = _pause_args_py(config, ds, hi_args, lo_args)
            plans.append((weights, counts))
        hi_list = resolve(hi_args)
        lo_list = resolve(lo_args)
        diffs = [a - b for a, b in zip(hi_list, lo_list)]
        if is_ff:
            lead_vals = list(resolve(lead_args))

    out: list[float] = []
    cursor = 0
    lead_cursor = 0
    for (weights, counts), config in zip(plans, configs):
        length = config.movie_length
        if weights is None:
            count = counts[0]
            if is_ff:
                avg = sum(diffs[cursor : cursor + count], lead_vals[lead_cursor])
                lead_cursor += 1
            else:
                avg = sum(diffs[cursor : cursor + count])
            cursor += count
        else:
            total = 0.0
            for weight, count in zip(weights, counts):
                if is_ff:
                    node = sum(diffs[cursor : cursor + count], lead_vals[lead_cursor])
                    lead_cursor += 1
                else:
                    node = sum(diffs[cursor : cursor + count])
                total += weight * node
                cursor += count
            avg = 0.5 * total
        value = avg if is_pause else avg / length
        if include_end_hit and is_ff:
            value += transform.end_mass() / length
        out.append(float(min(1.0, max(0.0, value))))
    return out


def hit_probability_at_many(
    operation: VCROperation,
    config: SystemConfiguration,
    duration: DurationDistribution,
    states: Sequence[tuple[float, float]],
    include_end_hit: bool = True,
) -> list[float]:
    """Batched :func:`hit_probability_at` over many ``(V_c, d)`` states.

    The hit-set geometry is built per state exactly as the scalar function
    does; only the CDF evaluation is fused into one batch through
    :func:`~repro.numerics.intervals.measure_under_many`.
    """
    unions = [hit_intervals(operation, config, v_c, offset_d) for v_c, offset_d in states]
    masses = measure_under_many(unions, duration.cdf_batch)
    out: list[float] = []
    for (v_c, _), mass in zip(states, masses):
        if include_end_hit and operation is VCROperation.FAST_FORWARD:
            end = fastforward_end_interval(config, v_c)
            mass += duration.probability(end.lo, end.hi)
        out.append(min(1.0, max(0.0, mass)))
    return out
