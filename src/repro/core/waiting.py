"""Batching waiting-time model for arriving viewers.

Section 2 of the paper: a viewer arriving while the newest partition's
enrollment window is open joins immediately (type 2); otherwise he queues
for the next restart (type 1).  With Poisson arrivals the arrival instant is
uniform over the restart period ``l/n``, of which the first ``B/n`` minutes
(the enrollment window) give zero wait, and an arrival ``u`` minutes into
the remaining gap waits ``gap − u``.  This yields closed forms for the whole
waiting-time distribution, which the simulator validates:

* ``P(wait = 0) = span / spacing = B / l``,
* ``P(wait > t) = (gap − t) / spacing`` for ``0 <= t < gap``,
* ``E[wait] = gap^2 / (2 · spacing)``,
* maximum wait ``= gap = w`` (Eq. 2's quantity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import SystemConfiguration
from repro.exceptions import ConfigurationError

__all__ = ["WaitingTimeModel"]


@dataclass(frozen=True)
class WaitingTimeModel:
    """Closed-form waiting statistics for one configuration."""

    config: SystemConfiguration

    @property
    def type2_fraction(self) -> float:
        """Fraction of arrivals that join an open window (zero wait)."""
        return self.config.partition_span / self.config.partition_spacing

    @property
    def type1_fraction(self) -> float:
        """Fraction of arrivals that must queue for the next restart."""
        return 1.0 - self.type2_fraction

    @property
    def max_wait(self) -> float:
        """The worst case: arriving just as the window closes — Eq. (2)'s ``w``."""
        return self.config.gap

    @property
    def mean_wait(self) -> float:
        """``E[wait] = gap^2 / (2 spacing)`` over *all* arrivals."""
        spacing = self.config.partition_spacing
        return self.config.gap ** 2 / (2.0 * spacing)

    @property
    def mean_wait_type1(self) -> float:
        """``E[wait | wait > 0] = gap / 2`` — queued arrivals are uniform."""
        return self.config.gap / 2.0

    def survival(self, t: float) -> float:
        """``P(wait > t)``."""
        if t < 0.0:
            return 1.0
        gap = self.config.gap
        if t >= gap:
            return 0.0
        return (gap - t) / self.config.partition_spacing

    def cdf(self, t: float) -> float:
        """``P(wait <= t)`` — has an atom of size ``B/l`` at zero."""
        return 1.0 - self.survival(t)

    def quantile(self, q: float) -> float:
        """Smallest ``t`` with ``P(wait <= t) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile level must be in [0, 1], got {q}")
        atom = self.cdf(0.0)
        if q <= atom:
            return 0.0
        # Invert 1 − (gap − t)/spacing = q on the continuous part.
        gap = self.config.gap
        spacing = self.config.partition_spacing
        t = gap - (1.0 - q) * spacing
        return min(max(t, 0.0), gap)

    def variance(self) -> float:
        """Var[wait] including the zero atom."""
        gap = self.config.gap
        spacing = self.config.partition_spacing
        # E[W^2] = ∫_0^gap (gap − u)^2 du / spacing = gap^3 / (3 spacing).
        second_moment = gap ** 3 / (3.0 * spacing)
        return second_moment - self.mean_wait ** 2

    def defection_probability(self, mean_patience: float) -> float:
        """Probability an arrival reneges before the next restart.

        A queued (type-1) viewer with exponential patience of mean ``theta``
        defects iff his patience expires before his uniform residual wait;
        unconditionally,

            ``P(defect) = (1/spacing) ∫_0^gap (1 − e^(−t/theta)) dt
                        = (gap − theta·(1 − e^(−gap/theta))) / spacing``.

        Type-2 arrivals (open enrollment window) never defect.  Validated
        against the reneging server simulation in the test suite.
        """
        if mean_patience <= 0.0:
            raise ConfigurationError(
                f"mean patience must be positive, got {mean_patience}"
            )
        gap = self.config.gap
        if gap == 0.0:
            return 0.0
        spacing = self.config.partition_spacing
        theta = mean_patience
        return (gap - theta * (1.0 - math.exp(-gap / theta))) / spacing

    def describe(self) -> str:
        """Single-line human-readable summary."""
        return (
            f"WaitingTimeModel(max={self.max_wait:g} min, mean={self.mean_wait:g} min, "
            f"P(no wait)={self.type2_fraction:.3f})"
        )
