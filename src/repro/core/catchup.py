"""Catch-up kinematics — Eq. (1) of the paper.

A viewer fast-forwarding at rate ``R_FF`` closes on a target playing at
``R_PB`` with relative speed ``R_FF − R_PB``; the movie time the viewer
*traverses* before the catch-up is the initial gap times

    ``alpha = R_FF / (R_FF − R_PB)``.

A rewinding viewer moves toward a target behind him with closing speed
``R_PB + R_RW``; the movie time rewound before meeting is the gap times

    ``gamma = R_RW / (R_PB + R_RW)``.

These two factors convert distances between viewers into thresholds on the
operation-duration random variable, which is what makes the hit sets of
Section 3 unions of intervals in duration space.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.parameters import VCRRates
from repro.exceptions import ConfigurationError

__all__ = [
    "ff_catchup_factor",
    "rw_catchup_factor",
    "ff_catchup_time",
    "rw_catchup_time",
    "ff_wall_time_to_catch",
    "rw_wall_time_to_catch",
]


# VCRRates is a frozen (hashable) dataclass and sizing sweeps derive the two
# factors from the same handful of rate triples millions of times, so the
# division is memoised.  The cache is tiny: deployments use one rate set.
@lru_cache(maxsize=128)
def _catchup_factors(rates: VCRRates) -> tuple[float, float]:
    alpha = rates.fast_forward / (rates.fast_forward - rates.playback)
    gamma = rates.rewind / (rates.playback + rates.rewind)
    return alpha, gamma


def ff_catchup_factor(rates: VCRRates) -> float:
    """``alpha = R_FF / (R_FF − R_PB)`` — always > 1."""
    return _catchup_factors(rates)[0]


def rw_catchup_factor(rates: VCRRates) -> float:
    """``gamma = R_RW / (R_PB + R_RW)`` — always in (0, 1)."""
    return _catchup_factors(rates)[1]


def ff_catchup_time(rates: VCRRates, gap: float) -> float:
    """Movie time fast-forwarded before catching a target ``gap`` minutes ahead.

    Eq. (1), FF branch: ``t = alpha * delta``.
    """
    _require_non_negative_gap(gap)
    return ff_catchup_factor(rates) * gap


def rw_catchup_time(rates: VCRRates, gap: float) -> float:
    """Movie time rewound before meeting a target ``gap`` minutes behind.

    Eq. (1), RW branch: ``t = gamma * delta``.
    """
    _require_non_negative_gap(gap)
    return rw_catchup_factor(rates) * gap


def ff_wall_time_to_catch(rates: VCRRates, gap: float) -> float:
    """Wall-clock minutes spent fast-forwarding before the catch-up."""
    _require_non_negative_gap(gap)
    return gap / (rates.fast_forward - rates.playback)


def rw_wall_time_to_catch(rates: VCRRates, gap: float) -> float:
    """Wall-clock minutes spent rewinding before the meet."""
    _require_non_negative_gap(gap)
    return gap / (rates.playback + rates.rewind)


def _require_non_negative_gap(gap: float) -> None:
    if gap < 0.0:
        raise ConfigurationError(f"catch-up gap must be non-negative, got {gap}")
