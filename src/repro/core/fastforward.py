"""Literal transcription of the paper's fast-forward equations (3)–(21).

This module exists for fidelity and cross-validation: it follows the paper's
case analysis term by term — hits within the same partition
(:func:`p_hit_within`, Eqs. 3–8), complete/partial hits in the ``i``-th
partition ahead (:func:`p_hit_jump`, Eqs. 9–18), the Eq.-(19) bound on the
jump index, fast-forwarding past the end of the movie (:func:`p_end`,
Eq. 20), and their sum (:func:`p_hit_fastforward`, Eq. 21).

The production path is the interval engine in :mod:`repro.core.hitsets`,
which computes the same quantity in closed form over ``V_c``; the test suite
asserts agreement between the two to tight tolerance.  A third, fully
independent path (:func:`p_hit_fastforward_direct`) performs brute-force 2-D
quadrature of the conditional hit probability over ``(V_c, d)``.

Notation (mirrors the paper):

* ``alpha = R_FF / (R_FF − R_PB)`` — Eq. (1).
* ``V_c`` — viewer position; ``V_f = V_c + d`` — first possible viewer of the
  same partition, ``d ~ U[0, B/n]``.
* ``V_t = (l + (alpha−1) V_c) / alpha`` — Eq. (5): the farthest position
  whose viewer can still be caught before the movie ends.
"""

from __future__ import annotations

import math

from repro.core.catchup import ff_catchup_factor
from repro.core.hitsets import fastforward_end_interval, fastforward_hit_intervals
from repro.core.parameters import SystemConfiguration
from repro.distributions.base import DurationDistribution
from repro.exceptions import ConfigurationError
from repro.numerics.quadrature import gauss_legendre

__all__ = [
    "p_hit_within",
    "p_hit_jump",
    "max_jump_index",
    "p_end",
    "p_hit_fastforward",
    "p_hit_fastforward_direct",
]

_NODES = 48


def _cdf(duration: DurationDistribution):
    """Vector-friendly CDF wrapper (the families expose scalar ``cdf``)."""

    def F(x) -> float:
        return duration.cdf(float(x))

    return F


# ----------------------------------------------------------------------
# Hits within the same partition — Eqs. (3)–(8).
# ----------------------------------------------------------------------
def p_hit_within(config: SystemConfiguration, duration: DurationDistribution) -> float:
    """``P(hit_w | FF)`` — sum of the case-a and case-b terms (Eqs. 7 + 8)."""
    alpha = ff_catchup_factor(config.rates)
    length = config.movie_length
    span = config.partition_span
    if span == 0.0:
        return 0.0
    F = _cdf(duration)

    # Case a (Eq. 7): V_c in [0, l − B*alpha/n]; the inner Eq.-(4) integral is
    # independent of V_c after substituting u = V_f − V_c.
    case_a_top = length - span * alpha
    p_case_a = 0.0
    if case_a_top > 0.0:
        inner = gauss_legendre(lambda u: F(alpha * u), 0.0, span, num_nodes=_NODES) / span
        p_case_a = inner * case_a_top / length

    # Case b (Eq. 8): V_c in (l − B*alpha/n, l]; the Eq.-(6) inner integral
    # splits at V_t where catch-up stops being possible before the movie ends.
    def inner_case_b(v_c: float) -> float:
        v_t = (length + (alpha - 1.0) * v_c) / alpha
        reach = min(v_t, v_c + span)  # V_t can exceed V_c + B/n near the seam
        first = gauss_legendre(
            lambda v_f: F(alpha * (v_f - v_c)), v_c, reach, num_nodes=_NODES
        )
        tail = max(0.0, (v_c + span) - reach) * F(alpha * (v_t - v_c))
        return (first + tail) / span

    case_b_lo = max(0.0, case_a_top)
    p_case_b = gauss_legendre(inner_case_b, case_b_lo, length, num_nodes=_NODES) / length
    return p_case_a + p_case_b


# ----------------------------------------------------------------------
# Hits in the i-th partition ahead — Eqs. (9)–(18).
# ----------------------------------------------------------------------
def p_hit_jump(
    config: SystemConfiguration, duration: DurationDistribution, jump_index: int
) -> float:
    """``P(hit_j^i | FF)`` — the four-term sum of Eqs. (15)–(18)."""
    if jump_index < 1:
        raise ConfigurationError(f"jump index must be >= 1, got {jump_index}")
    alpha = ff_catchup_factor(config.rates)
    length = config.movie_length
    span = config.partition_span
    spacing = config.partition_spacing
    if span == 0.0:
        return 0.0
    F = _cdf(duration)
    phase = jump_index * spacing  # i*l/n

    def delta_lo(v_c: float, v_f: float) -> float:
        return phase + (v_f - v_c) - span  # Delta_jump_l

    def delta_hi(v_c: float, v_f: float) -> float:
        return phase + (v_f - v_c)  # Delta_jump_f

    def complete(v_c: float, v_f: float) -> float:
        """Eq. (9): caught both V_l_i and V_f_i."""
        return F(alpha * delta_hi(v_c, v_f)) - F(alpha * delta_lo(v_c, v_f))

    def partial(v_c: float, v_f: float) -> float:
        """Eq. (10): caught V_l_i only; upper limit collapses to l − V_c."""
        return F(length - v_c) - F(alpha * delta_lo(v_c, v_f))

    def v_t(v_c: float) -> float:
        return (length + (alpha - 1.0) * v_c - phase * alpha) / alpha

    def v_t_prime(v_c: float) -> float:
        return (length + (alpha - 1.0) * v_c - alpha * (phase - span)) / alpha

    # Eq. (15): complete hit over the full V_f range.
    c1_top = length - span * alpha - phase * alpha
    p1 = 0.0
    if c1_top > 0.0:
        # Inner integral depends on V_c only through u = V_f − V_c.
        inner = gauss_legendre(
            lambda u: F(alpha * (phase + u)) - F(alpha * (phase + u - span)),
            0.0,
            span,
            num_nodes=_NODES,
        ) / span
        p1 = inner * c1_top / length

    seam_lo = max(0.0, c1_top)
    seam_hi = max(seam_lo, length - phase * alpha)

    # Eq. (16): complete hit, V_f limited to V_t.
    def inner_p2(v_c: float) -> float:
        top = min(v_t(v_c), v_c + span)
        if top <= v_c:
            return 0.0
        return gauss_legendre(
            lambda v_f: complete(v_c, v_f), v_c, top, num_nodes=_NODES
        ) / span

    p2 = (
        gauss_legendre(inner_p2, seam_lo, seam_hi, num_nodes=_NODES) / length
        if seam_hi > seam_lo
        else 0.0
    )

    # Eq. (17): partial hit for V_f beyond V_t (same V_c band as Eq. 16).
    def inner_p3(v_c: float) -> float:
        lo = max(v_c, v_t(v_c))
        hi = v_c + span
        if hi <= lo:
            return 0.0
        return gauss_legendre(
            lambda v_f: partial(v_c, v_f), lo, hi, num_nodes=_NODES
        ) / span

    p3 = (
        gauss_legendre(inner_p3, seam_lo, seam_hi, num_nodes=_NODES) / length
        if seam_hi > seam_lo
        else 0.0
    )

    # Eq. (18): only partial hits are possible; V_f limited to V_t'.
    p4_lo = max(0.0, length - phase * alpha)
    p4_hi = max(p4_lo, min(length, length - (phase - span) * alpha))

    def inner_p4(v_c: float) -> float:
        top = min(v_t_prime(v_c), v_c + span)
        if top <= v_c:
            return 0.0
        return gauss_legendre(
            lambda v_f: partial(v_c, v_f), v_c, top, num_nodes=_NODES
        ) / span

    p4 = (
        gauss_legendre(inner_p4, p4_lo, p4_hi, num_nodes=_NODES) / length
        if p4_hi > p4_lo
        else 0.0
    )
    return max(0.0, p1) + max(0.0, p2) + max(0.0, p3) + max(0.0, p4)


def max_jump_index(config: SystemConfiguration) -> int:
    """Eq. (19): largest ``i`` for which a complete jump hit is possible.

    ``i <= floor((n(l + w*alpha) − l*alpha) / (l*alpha))``.  The partial-hit
    terms (Eqs. 17/18) can be non-zero for one more index; the summation in
    :func:`p_hit_fastforward` therefore iterates until the Eq.-(18) range is
    empty rather than stopping exactly here.
    """
    alpha = ff_catchup_factor(config.rates)
    length = config.movie_length
    n = config.num_partitions
    w = config.max_wait
    return max(0, math.floor((n * (length + w * alpha) - length * alpha) / (length * alpha)))


def p_end(config: SystemConfiguration, duration: DurationDistribution) -> float:
    """Eq. (20): ``P(end) = (1/l) ∫_0^l [F(l) − F(l − V_c)] dV_c``."""
    F = _cdf(duration)
    length = config.movie_length
    total_mass = F(length)
    integral = gauss_legendre(
        lambda v_c: total_mass - F(length - v_c), 0.0, length, num_nodes=_NODES
    )
    return integral / length


def p_hit_fastforward(
    config: SystemConfiguration,
    duration: DurationDistribution,
    include_end_hit: bool = True,
) -> float:
    """Eq. (21): ``P(hit|FF) = P(hit_w|FF) + Σ_i P(hit_j^i|FF) + P(end)``."""
    alpha = ff_catchup_factor(config.rates)
    total = p_hit_within(config, duration)
    i = 1
    while True:
        # Stop once even the Eq.-(18) partial-hit V_c band is empty.
        if (i * config.partition_spacing - config.partition_span) * alpha >= config.movie_length:
            break
        total += p_hit_jump(config, duration, i)
        i += 1
    if include_end_hit:
        total += p_end(config, duration)
    return min(1.0, max(0.0, total))


def p_hit_fastforward_direct(
    config: SystemConfiguration,
    duration: DurationDistribution,
    include_end_hit: bool = True,
    num_nodes: int = 32,
) -> float:
    """Brute-force 2-D quadrature over ``(V_c, d)`` of the conditional hit mass.

    A third independent evaluation path, used by the property tests to pin
    down both the paper transcription and the interval engine.
    """
    span = config.partition_span
    length = config.movie_length

    def over_vc(d: float) -> float:
        def mass(v_c: float) -> float:
            value = fastforward_hit_intervals(config, v_c, d).measure_under(duration.cdf)
            if include_end_hit:
                end = fastforward_end_interval(config, v_c)
                value += duration.probability(end.lo, end.hi)
            return value

        return gauss_legendre(mass, 0.0, length, num_nodes=num_nodes) / length

    if span == 0.0:
        return min(1.0, max(0.0, over_vc(0.0)))
    outer = gauss_legendre(over_vc, 0.0, span, num_nodes=num_nodes) / span
    return min(1.0, max(0.0, outer))
