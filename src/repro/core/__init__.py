"""The paper's primary contribution: the analytical hit-probability model.

Given a static-partitioned batching-and-buffering configuration
(:class:`~repro.core.parameters.SystemConfiguration`) and duration
distributions for the VCR operations, the model predicts the probability that
a viewer resuming normal playback after a VCR operation lands inside a live
buffer partition — and can therefore release the I/O stream that served the
operation (a *hit*, Section 3 of the paper).

Two independent implementations are provided:

* :mod:`repro.core.hitsets` — the *interval engine*: for each viewer state it
  constructs the exact set of operation durations that produce a hit as a
  union of intervals (Eq. (1) catch-up kinematics), then unconditions over the
  viewer's position analytically and over the in-partition offset numerically.
  Handles FF, RW and PAU uniformly; this is the production path.
* :mod:`repro.core.fastforward` — a literal transcription of the paper's
  equations (3)–(21) for the FF operation, used to cross-validate the interval
  engine term by term.

:class:`~repro.core.hitmodel.HitProbabilityModel` combines the per-operation
probabilities with the VCR mix (Eq. (22)).
"""

from repro.core.catchup import (
    ff_catchup_factor,
    ff_catchup_time,
    rw_catchup_factor,
    rw_catchup_time,
)
from repro.core.hitmodel import HitBreakdown, HitProbabilityModel, VCRMix
from repro.core.hitsets import (
    fastforward_hit_intervals,
    hit_probability,
    pause_hit_intervals,
    rewind_hit_intervals,
)
from repro.core.parameters import SystemConfiguration, VCRRates
from repro.core.phase2 import Phase2Model
from repro.core.vcrop import VCROperation
from repro.core.waiting import WaitingTimeModel

__all__ = [
    "Phase2Model",
    "WaitingTimeModel",
    "SystemConfiguration",
    "VCRRates",
    "VCROperation",
    "VCRMix",
    "HitBreakdown",
    "HitProbabilityModel",
    "ff_catchup_factor",
    "ff_catchup_time",
    "rw_catchup_factor",
    "rw_catchup_time",
    "fastforward_hit_intervals",
    "rewind_hit_intervals",
    "pause_hit_intervals",
    "hit_probability",
]
