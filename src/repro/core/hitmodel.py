"""Top-level hit-probability model — Eq. (22) and friends.

:class:`HitProbabilityModel` packages the per-operation probabilities of
:mod:`repro.core.hitsets` with the VCR mix ``(P_FF, P_RW, P_PAU)`` into the
paper's headline quantity

    ``P(hit) = P(hit|FF) P_FF + P(hit|RW) P_RW + P(hit|PAU) P_PAU``

for a given system configuration, and is the object the sizing layer sweeps.
Duration distributions are truncated and renormalised onto ``[0, l]`` on
construction (the paper defines every pdf there), and the per-distribution
CDF transforms are cached so that sweeping hundreds of ``(B, n)`` candidates
for one movie re-uses the expensive part.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.hitsets import (
    CdfTransform,
    end_probability,
    hit_probability,
    hit_probability_batch,
)
from repro.core.parameters import SystemConfiguration, VCRRates
from repro.core.vcrop import VCROperation
from repro.distributions.base import DurationDistribution
from repro.distributions.truncated import truncate
from repro.exceptions import ConfigurationError
from repro.numerics.backend import batching_enabled

__all__ = ["VCRMix", "HitBreakdown", "HitProbabilityModel"]


@dataclass(frozen=True)
class VCRMix:
    """Probabilities that an issued VCR request is FF / RW / PAU.

    Section 3.1.4: "the values of these probabilities can be determined by
    measuring user behavior".  Must sum to 1 (within tolerance); individual
    entries may be zero, which the Figure 7(a)–(c) single-operation
    experiments use.
    """

    p_ff: float
    p_rw: float
    p_pause: float

    def __post_init__(self) -> None:
        for name, value in (("p_ff", self.p_ff), ("p_rw", self.p_rw), ("p_pause", self.p_pause)):
            if not (math.isfinite(value) and 0.0 <= value <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        total = self.p_ff + self.p_rw + self.p_pause
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(f"VCR mix must sum to 1, got {total}")

    @classmethod
    def only(cls, operation: VCROperation) -> "VCRMix":
        """A mix concentrated on a single operation (Figures 7(a)–(c))."""
        return cls(
            p_ff=1.0 if operation is VCROperation.FAST_FORWARD else 0.0,
            p_rw=1.0 if operation is VCROperation.REWIND else 0.0,
            p_pause=1.0 if operation is VCROperation.PAUSE else 0.0,
        )

    @classmethod
    def paper_figure7d(cls) -> "VCRMix":
        """The mixed-workload experiment of Figure 7(d)."""
        return cls(p_ff=0.2, p_rw=0.2, p_pause=0.6)

    def probability_of(self, operation: VCROperation) -> float:
        """The mix weight of one operation."""
        if operation is VCROperation.FAST_FORWARD:
            return self.p_ff
        if operation is VCROperation.REWIND:
            return self.p_rw
        return self.p_pause

    def as_dict(self) -> dict[VCROperation, float]:
        """The mix as an operation-keyed dictionary."""
        return {op: self.probability_of(op) for op in VCROperation}


@dataclass(frozen=True)
class HitBreakdown:
    """Per-operation hit probabilities plus the Eq.-(22) mixture."""

    p_hit_ff: float
    p_hit_rw: float
    p_hit_pause: float
    p_end_ff: float
    mix: VCRMix

    @property
    def p_hit(self) -> float:
        """The mixed hit probability, Eq. (22)."""
        return (
            self.p_hit_ff * self.mix.p_ff
            + self.p_hit_rw * self.mix.p_rw
            + self.p_hit_pause * self.mix.p_pause
        )

    def probability_of(self, operation: VCROperation) -> float:
        """The per-operation hit probability for ``operation``."""
        if operation is VCROperation.FAST_FORWARD:
            return self.p_hit_ff
        if operation is VCROperation.REWIND:
            return self.p_hit_rw
        return self.p_hit_pause


class HitProbabilityModel:
    """Analytical ``P(hit)`` evaluator for one movie.

    Parameters
    ----------
    movie_length:
        ``l`` in minutes.
    durations:
        Either a single :class:`DurationDistribution` used for all three
        operations (the paper's Figure 7 setup) or a mapping from
        :class:`VCROperation` to distributions.  Distributions whose support
        extends past ``l`` are truncated and renormalised automatically.
    mix:
        The VCR request mix; defaults to Figure 7(d)'s
        ``(0.2, 0.2, 0.6)``.
    rates:
        Playback/FF/RW rates; default 1/3/3 per the paper.
    include_end_hit:
        Whether fast-forwarding past the end of the movie counts as a
        release event (Eq. 21 includes it; set False to reproduce the
        "pure batching has hit probability zero" reading of Section 3.1).
    num_offset_nodes:
        Quadrature nodes for the in-partition-offset integral.
    """

    def __init__(
        self,
        movie_length: float,
        durations: DurationDistribution | dict[VCROperation, DurationDistribution],
        mix: VCRMix | None = None,
        rates: VCRRates | None = None,
        include_end_hit: bool = True,
        num_offset_nodes: int = 32,
    ) -> None:
        if movie_length <= 0:
            raise ConfigurationError(f"movie_length must be positive, got {movie_length}")
        self._movie_length = float(movie_length)
        self._rates = rates or VCRRates.paper_default()
        self._mix = mix or VCRMix.paper_figure7d()
        self._include_end_hit = include_end_hit
        self._num_offset_nodes = num_offset_nodes
        if isinstance(durations, DurationDistribution):
            durations = {op: durations for op in VCROperation}
        missing = [op for op in VCROperation if op not in durations]
        if missing:
            raise ConfigurationError(f"missing duration distributions for {missing}")
        self._durations = {
            op: truncate(dist, self._movie_length) for op, dist in durations.items()
        }
        self._transforms = {
            op: CdfTransform(dist, self._movie_length)
            for op, dist in self._durations.items()
        }

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------
    @property
    def movie_length(self) -> float:
        """The movie length ``l`` in minutes."""
        return self._movie_length

    @property
    def rates(self) -> VCRRates:
        """The playback/FF/RW rates the model was built with."""
        return self._rates

    @property
    def mix(self) -> VCRMix:
        """The VCR request mix used by Eq. (22)."""
        return self._mix

    def duration_of(self, operation: VCROperation) -> DurationDistribution:
        """The (truncated) duration distribution used for ``operation``."""
        return self._durations[operation]

    def configuration(self, num_partitions: int, buffer_minutes: float) -> SystemConfiguration:
        """Build a :class:`SystemConfiguration` bound to this movie's ``l``."""
        return SystemConfiguration(
            movie_length=self._movie_length,
            num_partitions=num_partitions,
            buffer_minutes=buffer_minutes,
            rates=self._rates,
        )

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def hit_probability_for(
        self, operation: VCROperation, config: SystemConfiguration
    ) -> float:
        """``P(hit | operation)`` under this movie's duration statistics.

        With a batched backend active (the default) this is a batch of one —
        byte-identical to the scalar path, which remains reachable (and is
        CI-compared) under ``REPRO_BACKEND=scalar``.
        """
        self._check_config(config)
        if batching_enabled():
            return self.hit_probability_for_batch(operation, [config])[0]
        return hit_probability(
            operation,
            config,
            self._durations[operation],
            include_end_hit=self._include_end_hit,
            num_offset_nodes=self._num_offset_nodes,
            transform=self._transforms[operation],
        )

    def hit_probability_for_batch(
        self, operation: VCROperation, configs: Sequence[SystemConfiguration]
    ) -> list[float]:
        """``P(hit | operation)`` for many configurations in one fused call."""
        for config in configs:
            self._check_config(config)
        if not batching_enabled():
            return [
                hit_probability(
                    operation,
                    config,
                    self._durations[operation],
                    include_end_hit=self._include_end_hit,
                    num_offset_nodes=self._num_offset_nodes,
                    transform=self._transforms[operation],
                )
                for config in configs
            ]
        return hit_probability_batch(
            operation,
            configs,
            self._durations[operation],
            include_end_hit=self._include_end_hit,
            num_offset_nodes=self._num_offset_nodes,
            transform=self._transforms[operation],
        )

    def hit_probability(self, config: SystemConfiguration) -> float:
        """The Eq.-(22) mixed hit probability for ``config``."""
        return self.breakdown(config).p_hit

    def hit_probability_batch(self, configs: Sequence[SystemConfiguration]) -> list[float]:
        """The Eq.-(22) mixed hit probability for many configurations.

        One fused evaluation per operation over the whole grid — this is the
        entry point frontier sweeps, the sizing optimiser and the runtime
        re-planner batch through.  Byte-identical to mapping
        :meth:`hit_probability` over ``configs``.
        """
        return [b.p_hit for b in self.breakdown_batch(configs)]

    def breakdown(self, config: SystemConfiguration) -> HitBreakdown:
        """All per-operation components for ``config``.

        Operations with zero mix weight are still evaluated — the breakdown
        is frequently used to compare single-operation curves (Figure 7).
        """
        if batching_enabled():
            return self.breakdown_batch([config])[0]
        self._check_config(config)
        ff_op = VCROperation.FAST_FORWARD
        return HitBreakdown(
            p_hit_ff=self.hit_probability_for(ff_op, config),
            p_hit_rw=self.hit_probability_for(VCROperation.REWIND, config),
            p_hit_pause=self.hit_probability_for(VCROperation.PAUSE, config),
            p_end_ff=end_probability(
                config, self._durations[ff_op], transform=self._transforms[ff_op]
            ),
            mix=self._mix,
        )

    def breakdown_batch(self, configs: Sequence[SystemConfiguration]) -> list[HitBreakdown]:
        """Per-operation components for many configurations in one pass."""
        ff_op = VCROperation.FAST_FORWARD
        ff = self.hit_probability_for_batch(ff_op, configs)
        rw = self.hit_probability_for_batch(VCROperation.REWIND, configs)
        pause = self.hit_probability_for_batch(VCROperation.PAUSE, configs)
        return [
            HitBreakdown(
                p_hit_ff=ff[i],
                p_hit_rw=rw[i],
                p_hit_pause=pause[i],
                p_end_ff=end_probability(
                    config, self._durations[ff_op], transform=self._transforms[ff_op]
                ),
                mix=self._mix,
            )
            for i, config in enumerate(configs)
        ]

    def hit_curve(
        self, partition_counts, max_wait: float
    ) -> list[tuple[SystemConfiguration, float]]:
        """``P(hit)`` along the Eq.-(2) constraint ``B = l − n·w``.

        This is the family of points the paper plots in Figure 7: sweep ``n``
        at a fixed maximum wait ``w``; the buffer follows from Eq. (2).
        Partition counts for which ``n·w > l`` are skipped.  The whole curve
        is one batched evaluation when a batched backend is active.
        """
        configs: list[SystemConfiguration] = []
        for n in partition_counts:
            buffer_minutes = self._movie_length - n * max_wait
            if buffer_minutes < 0.0:
                continue
            configs.append(self.configuration(int(n), buffer_minutes))
        if batching_enabled():
            return list(zip(configs, self.hit_probability_batch(configs)))
        return [(config, self.hit_probability(config)) for config in configs]

    def _check_config(self, config: SystemConfiguration) -> None:
        if not math.isclose(config.movie_length, self._movie_length, rel_tol=0, abs_tol=1e-9):
            raise ConfigurationError(
                f"configuration movie length {config.movie_length} does not match "
                f"the model's movie length {self._movie_length}"
            )

    def __repr__(self) -> str:
        return (
            f"HitProbabilityModel(l={self._movie_length:g}, mix={self._mix}, "
            f"rates={self._rates})"
        )
