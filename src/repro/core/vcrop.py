"""The three interactive VCR operations the paper models."""

from __future__ import annotations

import enum

__all__ = ["VCROperation"]


class VCROperation(enum.Enum):
    """Fast-forward with viewing, rewind with viewing, and pause.

    The paper's Section 2: "a VOD system is expected to provide VCR functions
    such as fast forward with viewing (FF), rewind with viewing (RW), and
    pause (PAU)".
    """

    FAST_FORWARD = "FF"
    REWIND = "RW"
    PAUSE = "PAU"

    def __str__(self) -> str:
        return self.value
