"""System configuration objects for the static-partitioning model.

The paper's Section 3.1 fixes the geometry of the scheme: a movie of length
``l`` served by ``n`` I/O streams restarted every ``l/n`` minutes, with ``B``
minutes' worth of buffer split evenly into ``n`` partitions of span ``B/n``.
The induced maximum batching wait is ``w = (l − B)/n`` (Eq. 2).  Everything
the hit model needs is derivable from ``(l, n, B)`` plus the playback/FF/RW
rates, so those are the stored fields; the rest are properties.

Units: minutes of movie time throughout.  Rates are unit-free multiples of
real time (playback rate 1 means one movie-minute per wall-minute).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError

__all__ = ["VCRRates", "SystemConfiguration"]


@dataclass(frozen=True)
class VCRRates:
    """Playback/fast-forward/rewind speeds (movie-minutes per wall-minute).

    The paper's Figure 7 experiments use FF and RW at three times the normal
    playback rate; :meth:`paper_default` reproduces that.
    """

    playback: float = 1.0
    fast_forward: float = 3.0
    rewind: float = 3.0

    def __post_init__(self) -> None:
        for name in ("playback", "fast_forward", "rewind"):
            value = getattr(self, name)
            if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
                raise ConfigurationError(f"{name} rate must be positive and finite, got {value}")
        if self.fast_forward <= self.playback:
            raise ConfigurationError(
                "fast-forward rate must exceed the playback rate "
                f"(got FF={self.fast_forward}, PB={self.playback}); otherwise a viewer "
                "can never catch up with a partition ahead (Eq. 1)"
            )

    @classmethod
    def paper_default(cls) -> "VCRRates":
        """Rates used throughout the paper's evaluation: FF = RW = 3x playback."""
        return cls(playback=1.0, fast_forward=3.0, rewind=3.0)

    @property
    def speedup_ff(self) -> float:
        """Fast-forward speed as a multiple of playback."""
        return self.fast_forward / self.playback

    @property
    def speedup_rw(self) -> float:
        """Rewind speed as a multiple of playback."""
        return self.rewind / self.playback


@dataclass(frozen=True)
class SystemConfiguration:
    """Geometry of the batching + static-partitioned-buffering scheme.

    Parameters
    ----------
    movie_length:
        ``l`` — movie length in minutes.
    num_partitions:
        ``n`` — number of I/O streams, equal to the number of buffer
        partitions (footnote 1 of the paper).
    buffer_minutes:
        ``B`` — total buffer dedicated to normal playback, expressed in
        minutes of video, *net* of the per-partition safety reserve ``delta``
        (the paper folds ``delta`` away via ``B = B' − n*delta``).
    rates:
        Playback/FF/RW speeds.
    """

    movie_length: float
    num_partitions: int
    buffer_minutes: float
    rates: VCRRates = field(default_factory=VCRRates.paper_default)

    def __post_init__(self) -> None:
        if not (math.isfinite(self.movie_length) and self.movie_length > 0):
            raise ConfigurationError(f"movie_length must be positive, got {self.movie_length}")
        if not (isinstance(self.num_partitions, int) and self.num_partitions >= 1):
            raise ConfigurationError(
                f"num_partitions must be an integer >= 1, got {self.num_partitions!r}"
            )
        if not (math.isfinite(self.buffer_minutes) and 0.0 <= self.buffer_minutes):
            raise ConfigurationError(
                f"buffer_minutes must be non-negative, got {self.buffer_minutes}"
            )
        if self.buffer_minutes > self.movie_length + 1e-12:
            raise ConfigurationError(
                f"buffer_minutes ({self.buffer_minutes}) cannot exceed the movie "
                f"length ({self.movie_length}): Eq. (2) requires B <= l"
            )

    # ------------------------------------------------------------------
    # Alternative constructors.
    # ------------------------------------------------------------------
    @classmethod
    def from_wait(
        cls,
        movie_length: float,
        num_partitions: int,
        max_wait: float,
        rates: VCRRates | None = None,
    ) -> "SystemConfiguration":
        """Build a configuration from ``(l, n, w)`` using Eq. (2): ``B = l − n*w``.

        Raises :class:`ConfigurationError` when ``n*w > l`` (negative buffer).
        """
        buffer_minutes = movie_length - num_partitions * max_wait
        if buffer_minutes < -1e-9:
            raise ConfigurationError(
                f"n*w = {num_partitions * max_wait:g} exceeds l = {movie_length:g}; "
                "no buffer allocation satisfies Eq. (2)"
            )
        return cls(
            movie_length=movie_length,
            num_partitions=num_partitions,
            buffer_minutes=max(0.0, buffer_minutes),
            rates=rates or VCRRates.paper_default(),
        )

    @classmethod
    def pure_batching(
        cls,
        movie_length: float,
        num_partitions: int,
        rates: VCRRates | None = None,
    ) -> "SystemConfiguration":
        """The ``B = 0`` degenerate case: one stream per batch, no buffering."""
        return cls(
            movie_length=movie_length,
            num_partitions=num_partitions,
            buffer_minutes=0.0,
            rates=rates or VCRRates.paper_default(),
        )

    def with_buffer(self, buffer_minutes: float) -> "SystemConfiguration":
        """Copy of this configuration with a different buffer budget."""
        return replace(self, buffer_minutes=buffer_minutes)

    def with_partitions(self, num_partitions: int) -> "SystemConfiguration":
        """Copy of this configuration with a different stream count."""
        return replace(self, num_partitions=num_partitions)

    # ------------------------------------------------------------------
    # Derived geometry (Section 3.1).
    # ------------------------------------------------------------------
    @property
    def max_wait(self) -> float:
        """``w = (l − B)/n`` — the worst-case batching wait (Eq. 2)."""
        return (self.movie_length - self.buffer_minutes) / self.num_partitions

    @property
    def partition_span(self) -> float:
        """``B/n`` — minutes of video retained by each partition."""
        return self.buffer_minutes / self.num_partitions

    @property
    def partition_spacing(self) -> float:
        """``l/n`` — phase difference between successive streams."""
        return self.movie_length / self.num_partitions

    @property
    def gap(self) -> float:
        """``l/n − B/n = w`` — un-buffered distance between partitions."""
        return self.partition_spacing - self.partition_span

    @property
    def buffer_fraction(self) -> float:
        """``B/l`` — fraction of the movie resident in memory."""
        return self.buffer_minutes / self.movie_length

    @property
    def is_pure_batching(self) -> bool:
        """True when no buffering is configured (``B == 0``)."""
        return self.buffer_minutes == 0.0

    @property
    def is_fully_buffered(self) -> bool:
        """True when the whole movie fits in the buffer (``B == l``)."""
        return math.isclose(self.buffer_minutes, self.movie_length, rel_tol=0, abs_tol=1e-12)

    def streams_saved_vs_pure_batching(self) -> float:
        """``B/w`` — streams saved relative to pure batching at the same wait.

        Section 3.1: "when we dedicate B minutes worth of buffer space for
        normal playback, then we can save B/w I/O streams".  Undefined
        (infinite) when ``w == 0``.
        """
        if self.max_wait == 0.0:
            return math.inf
        return self.buffer_minutes / self.max_wait

    def describe(self) -> str:
        """Single-line human-readable summary."""
        return (
            f"SystemConfiguration(l={self.movie_length:g} min, n={self.num_partitions}, "
            f"B={self.buffer_minutes:g} min, w={self.max_wait:g} min, "
            f"span={self.partition_span:g}, spacing={self.partition_spacing:g})"
        )
