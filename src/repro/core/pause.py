"""Pause hit probability.

During a pause the viewer's position is frozen while every buffer partition
keeps sweeping forward at the playback rate, and a fresh stream is restarted
every ``l/n`` minutes.  The viewer therefore sits under a partition window
during the periodic episodes

    ``x in [i*l/n − d, i*l/n − d + B/n]``,  ``i = 0, 1, 2, ...``

where ``d`` is his offset behind his partition's leading edge at the moment
of pausing.  The pattern has period ``l/n`` — a pause hit probability of
roughly ``B/l`` for long pauses, which is a useful sanity bound.  Pauses
longer than the movie wrap (``x mod l``, Section 2.1); since the paper
defines duration pdfs on ``[0, l]`` the wrap never activates for conforming
distributions, but :func:`wrap_duration` implements it for raw workloads.

As with rewind, the derivation is ours (the paper defers it to the technical
report); the simulator validates it the same way the paper's Figure 7(c)
does.
"""

from __future__ import annotations

import math

from repro.core.hitsets import pause_hit_intervals
from repro.core.parameters import SystemConfiguration
from repro.distributions.base import DurationDistribution
from repro.exceptions import ConfigurationError
from repro.numerics.quadrature import gauss_legendre

__all__ = [
    "p_hit_pause_direct",
    "p_hit_pause_own",
    "p_hit_pause_jump",
    "wrap_duration",
    "long_pause_limit",
]

_NODES = 48


def p_hit_pause_direct(
    config: SystemConfiguration,
    duration: DurationDistribution,
    num_nodes: int = 32,
) -> float:
    """Brute-force quadrature over ``d`` of the conditional pause hit mass.

    Pause hits do not depend on the viewer position ``V_c``, so a single 1-D
    integral unconditions completely.
    """
    span = config.partition_span

    def mass(d: float) -> float:
        return pause_hit_intervals(config, d).measure_under(duration.cdf)

    if span == 0.0:
        return min(1.0, max(0.0, mass(0.0)))
    value = gauss_legendre(mass, 0.0, span, num_nodes=num_nodes) / span
    return min(1.0, max(0.0, value))


def p_hit_pause_own(
    config: SystemConfiguration,
    duration: DurationDistribution,
    num_nodes: int = _NODES,
) -> float:
    """Probability of resuming while still inside the original partition.

    The ``i = 0`` episode: pause shorter than ``B/n − d``.
    """
    span = config.partition_span
    if span == 0.0:
        return 0.0

    def mass(d: float) -> float:
        return duration.probability(0.0, span - d)

    value = gauss_legendre(mass, 0.0, span, num_nodes=num_nodes) / span
    return min(1.0, max(0.0, value))


def p_hit_pause_jump(
    config: SystemConfiguration,
    duration: DurationDistribution,
    jump_index: int,
    num_nodes: int = _NODES,
) -> float:
    """Probability of resuming under the ``jump_index``-th later stream."""
    if jump_index < 1:
        raise ConfigurationError(f"jump index must be >= 1, got {jump_index}")
    span = config.partition_span
    spacing = config.partition_spacing
    if span == 0.0:
        return 0.0
    phase = jump_index * spacing

    def mass(d: float) -> float:
        return duration.probability(phase - d, phase - d + span)

    value = gauss_legendre(mass, 0.0, span, num_nodes=num_nodes) / span
    return min(1.0, max(0.0, value))


def wrap_duration(x: float, movie_length: float) -> float:
    """Section 2.1's equivalence: a pause of ``x > l`` behaves like ``x mod l``."""
    if movie_length <= 0.0:
        raise ConfigurationError(f"movie_length must be positive, got {movie_length}")
    if x < 0.0:
        raise ConfigurationError(f"duration must be non-negative, got {x}")
    if x < movie_length:
        return x
    return math.fmod(x, movie_length)


def long_pause_limit(config: SystemConfiguration) -> float:
    """Hit probability of an infinitely long (uniform-phase) pause: ``B/l``.

    The periodic window pattern covers a ``B/n`` slice of every ``l/n``
    period, so a pause that forgets its starting phase resumes under a window
    with probability ``(B/n)/(l/n) = B/l``.  Used as an asymptotic sanity
    check in the tests.
    """
    return config.buffer_fraction
