"""Rewind hit probability.

The paper derives ``P(hit|RW)`` in its companion technical report (CUHK
CS-TR-96-03) and omits the algebra; this module re-derives it from the same
Eq.-(1) kinematics (DESIGN.md Section 2 records the derivation):

* A viewer rewinding at ``R_RW`` meets a target ``Delta`` minutes behind him
  after rewinding ``gamma * Delta`` movie minutes, ``gamma = R_RW/(R_PB+R_RW)``.
* The trailing stretch of his own partition is ``B/n − d`` behind (own-window
  hit for durations up to ``gamma*(B/n − d)``); the ``i``-th partition behind
  contributes the window ``[gamma*(i*l/n − d), gamma*(i*l/n − d + B/n)]``.
* Rewinding past the start of the movie is a **miss** — the convention the
  paper states in Section 4 when explaining why its model slightly
  under-estimates the RW hit probability; hence every window is clipped to
  ``[0, V_c]``.

The production evaluation lives in :mod:`repro.core.hitsets`
(``hit_probability(VCROperation.REWIND, ...)``); this module adds a
paper-style decomposition (own partition vs. jumps) and a brute-force 2-D
quadrature used for cross-validation.
"""

from __future__ import annotations

from repro.core.catchup import rw_catchup_factor
from repro.core.hitsets import rewind_hit_intervals
from repro.core.parameters import SystemConfiguration
from repro.distributions.base import DurationDistribution
from repro.exceptions import ConfigurationError
from repro.numerics.quadrature import gauss_legendre

__all__ = [
    "p_hit_rewind_direct",
    "p_hit_rewind_own",
    "p_hit_rewind_jump",
    "p_start_miss_mass",
]

_NODES = 48


def _average_over_state(
    config: SystemConfiguration,
    conditional,
    num_nodes: int,
) -> float:
    """Uncondition ``conditional(V_c, d)`` over ``V_c ~ U[0,l]``, ``d ~ U[0,B/n]``."""
    span = config.partition_span
    length = config.movie_length

    def over_vc(d: float) -> float:
        return gauss_legendre(
            lambda v_c: conditional(v_c, d), 0.0, length, num_nodes=num_nodes
        ) / length

    if span == 0.0:
        return over_vc(0.0)
    return gauss_legendre(over_vc, 0.0, span, num_nodes=num_nodes) / span


def p_hit_rewind_direct(
    config: SystemConfiguration,
    duration: DurationDistribution,
    num_nodes: int = 32,
) -> float:
    """Brute-force 2-D quadrature of the conditional rewind hit mass."""

    def mass(v_c: float, d: float) -> float:
        return rewind_hit_intervals(config, v_c, d).measure_under(duration.cdf)

    return min(1.0, max(0.0, _average_over_state(config, mass, num_nodes)))


def p_hit_rewind_own(
    config: SystemConfiguration,
    duration: DurationDistribution,
    num_nodes: int = _NODES,
) -> float:
    """Hit in the trailing stretch of the viewer's own partition only.

    The RW analogue of the paper's ``P(hit_w | FF)``: durations in
    ``[0, gamma*(B/n − d)]`` clipped at ``V_c``.
    """
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span

    def mass(v_c: float, d: float) -> float:
        return duration.probability(0.0, min(gamma * (span - d), v_c))

    return min(1.0, max(0.0, _average_over_state(config, mass, num_nodes)))


def p_hit_rewind_jump(
    config: SystemConfiguration,
    duration: DurationDistribution,
    jump_index: int,
    num_nodes: int = _NODES,
) -> float:
    """Hit in the ``jump_index``-th partition *behind* the viewer."""
    if jump_index < 1:
        raise ConfigurationError(f"jump index must be >= 1, got {jump_index}")
    gamma = rw_catchup_factor(config.rates)
    span = config.partition_span
    spacing = config.partition_spacing
    phase = jump_index * spacing

    def mass(v_c: float, d: float) -> float:
        lo = gamma * (phase - d)
        hi = gamma * (phase - d + span)
        return duration.probability(min(lo, v_c), min(hi, v_c))

    return min(1.0, max(0.0, _average_over_state(config, mass, num_nodes)))


def p_start_miss_mass(
    config: SystemConfiguration,
    duration: DurationDistribution,
    num_nodes: int = _NODES,
) -> float:
    """Probability that a rewind runs past the start of the movie.

    ``P(X > V_c)`` averaged over the viewer position: the mass the model
    deliberately books as misses (the paper's stated boundary convention).
    Useful as a diagnostic — it bounds the model's RW under-estimation.
    """
    length = config.movie_length
    integral = gauss_legendre(
        lambda v_c: duration.survival(v_c), 0.0, length, num_nodes=num_nodes
    )
    return integral / length
