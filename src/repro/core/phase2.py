"""Analytical phase-2 model: how long a missed resume pins a stream.

When a resume misses every partition, the paper keeps the viewer on his
phase-1 stream "until he can join a partition, for instance, using the
piggybacking technique" (Section 2).  This module models that hold time
analytically so the reservation sizing in :mod:`repro.sizing.reservation`
can price misses without simulation:

* Conditional on a miss, the resume position sits in a gap of width
  ``w = spacing − span`` between the leading edge of the partition behind
  and the trailing edge of the partition ahead.  For smooth duration
  distributions the position is approximately uniform across the gap (the
  same style of approximation the paper uses for ``P(V_f)``), so the
  distance to the nearer window edge is ``min(u, w − u)``, ``u ~ U[0, w]``.
* Piggybacking closes that distance at ``epsilon * R_PB`` movie-minutes per
  wall minute, giving an uncapped mean hold of ``w / (4 epsilon R_PB)``.
* The merge must finish before the session does; with the resume position
  approximately uniform over the movie, the cap is ``(l − V)/R_PB``,
  ``V ~ U[0, l]``.

The :class:`Phase2Model` evaluates both the closed-form uncapped mean and
the capped mean/merge probability by quadrature, and converts miss rates
into steady-state pinned streams via Little's law.  The full-server
simulation validates the predictions (see
``tests/integration/test_phase2_validation.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import SystemConfiguration
from repro.exceptions import ConfigurationError
from repro.numerics.quadrature import gauss_legendre

__all__ = ["Phase2Model"]


@dataclass(frozen=True)
class Phase2Model:
    """Hold-time statistics for miss-resumed viewers under piggybacking."""

    config: SystemConfiguration
    rate_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.rate_tolerance < 1.0:
            raise ConfigurationError(
                f"rate tolerance must be in (0, 1), got {self.rate_tolerance}"
            )

    # ------------------------------------------------------------------
    # Geometry helpers.
    # ------------------------------------------------------------------
    @property
    def gap_width(self) -> float:
        """``w`` — the un-buffered distance between adjacent windows."""
        return self.config.gap

    @property
    def drift_speed(self) -> float:
        """Movie-minutes of lag closed per wall minute: ``epsilon * R_PB``."""
        return self.rate_tolerance * self.config.rates.playback

    def merge_time_from_offset(self, offset: float) -> float:
        """Wall minutes to merge from ``offset`` into the gap (uncapped).

        The cheaper direction wins: drift back ``offset`` minutes to the
        window behind or forward ``gap − offset`` to the window ahead.
        """
        if not 0.0 <= offset <= self.gap_width + 1e-12:
            raise ConfigurationError(
                f"offset {offset} outside the gap [0, {self.gap_width}]"
            )
        return min(offset, self.gap_width - offset) / self.drift_speed

    # ------------------------------------------------------------------
    # Hold-time statistics.
    # ------------------------------------------------------------------
    def mean_hold_uncapped(self) -> float:
        """``E[min(u, w − u)] / drift = w / (4 epsilon R_PB)`` — closed form."""
        if self.gap_width == 0.0:
            return 0.0
        return self.gap_width / (4.0 * self.drift_speed)

    def mean_hold(self) -> float:
        """Mean hold with the end-of-movie cap, by 2-D quadrature.

        Pure batching (no windows at all) degenerates to the expected
        remaining session, ``l / (2 R_PB)``.
        """
        playback = self.config.rates.playback
        length = self.config.movie_length
        if self.config.is_pure_batching:
            return length / (2.0 * playback)
        gap = self.gap_width
        if gap == 0.0:
            return 0.0

        def over_position(offset: float) -> float:
            merge = self.merge_time_from_offset(offset)
            # Cap by the remaining session, resume position V ~ U[0, l]:
            # E[min(merge, (l − V)/pb)] has a closed form per offset.
            cap_boundary = length - merge * playback  # V above this caps
            if cap_boundary <= 0.0:
                # Always capped: E[(l − V)/pb] = l/(2 pb).
                return length / (2.0 * playback)
            uncapped_mass = cap_boundary / length
            capped_mean = (length - cap_boundary) / (2.0 * playback)
            return merge * uncapped_mass + capped_mean * (1.0 - uncapped_mass)

        return gauss_legendre(over_position, 0.0, gap, num_nodes=48) / gap

    def merge_probability(self) -> float:
        """Probability a missed viewer merges before his session ends."""
        playback = self.config.rates.playback
        length = self.config.movie_length
        if self.config.is_pure_batching:
            return 0.0
        gap = self.gap_width
        if gap == 0.0:
            return 1.0

        def over_position(offset: float) -> float:
            merge = self.merge_time_from_offset(offset)
            cap_boundary = length - merge * playback
            return max(0.0, cap_boundary) / length

        return gauss_legendre(over_position, 0.0, gap, num_nodes=48) / gap

    # ------------------------------------------------------------------
    # Steady-state resource pinning (Little's law).
    # ------------------------------------------------------------------
    def expected_pinned_streams(self, miss_rate_per_minute: float) -> float:
        """Average streams pinned by phase-2 holds: ``lambda_miss * E[hold]``."""
        if miss_rate_per_minute < 0.0:
            raise ConfigurationError(
                f"miss rate must be non-negative, got {miss_rate_per_minute}"
            )
        return miss_rate_per_minute * self.mean_hold()

    def describe(self) -> str:
        """Single-line human-readable summary."""
        return (
            f"Phase2Model(gap={self.gap_width:g} min, eps={self.rate_tolerance:g}, "
            f"E[hold]={self.mean_hold():.2f} min, "
            f"P(merge)={self.merge_probability():.3f})"
        )
