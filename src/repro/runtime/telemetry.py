"""Streaming telemetry ingest: per-movie rolling statistics with decay.

A deployed front-end observes three things per popular movie: session
arrivals, the VCR operations viewers issue (type, duration), and whether
each resume found a buffered partition (hit) or pinned a stream (miss).
:class:`MovieTelemetry` reduces that stream to exactly the statistics the
paper's model consumes — the operation mix ``(P_FF, P_RW, P_PAU)``, a
duration sample window per operation, the arrival rate and the mean think
time — using exponentially decayed counters so old traffic ages out.

Counter decay follows the standard exponentially-weighted scheme: a count
``C`` observed under a half-life ``h`` decays as ``C * 2**(-(now-then)/h)``
and every arrival adds 1, so in steady state at rate ``lambda`` the counter
converges to ``lambda / beta`` with ``beta = ln 2 / h`` — which makes
``rate = C * beta`` an online rate estimator with a built-in forgetting
window.  Duration samples keep the most recent ``window_size`` values per
operation, the window the KS drift detector of :mod:`repro.runtime.refit`
tests against the currently fitted distribution.

:class:`TelemetryHub` multiplexes movies and speaks two dialects: the
observer protocol of :class:`repro.vod.server.VODServer` (``on_session_start``
/ ``on_vcr`` / ``on_resume`` / ``on_playback`` / ``on_session_end``) for live
runs, and :meth:`ingest_session` / :meth:`ingest_trace` for JSON-lines trace
replay.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.core.hitmodel import VCRMix
from repro.core.vcrop import VCROperation
from repro.exceptions import ConfigurationError
from repro.workloads.events import SessionRecord, Trace

__all__ = ["TelemetrySnapshot", "MovieTelemetry", "TelemetryHub"]

_LN2 = math.log(2.0)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable view of one movie's current rolling statistics.

    This is the unit of exchange between the hub and the control plane: the
    refitter reads ``durations`` and ``mix``, the planner reads
    ``arrival_rate`` and ``mean_think_time``, and the admission gate reads
    the hit/miss balance.
    """

    movie_id: int
    movie_length: float
    at_minutes: float
    sessions_seen: int
    events_seen: int
    mix: VCRMix | None
    arrival_rate: float | None
    mean_think_time: float | None
    durations: dict[VCROperation, tuple[float, ...]]
    resume_hits: int
    resume_misses: int

    @property
    def observed_hit_rate(self) -> float | None:
        """The realised resume hit fraction, None before any resume."""
        total = self.resume_hits + self.resume_misses
        return self.resume_hits / total if total else None

    def sample_count(self, operation: VCROperation) -> int:
        """Window size currently held for one operation."""
        return len(self.durations.get(operation, ()))


class MovieTelemetry:
    """Rolling, exponentially decayed statistics for one movie."""

    def __init__(
        self,
        movie_id: int,
        movie_length: float,
        window_size: int = 512,
        half_life_minutes: float = 240.0,
    ) -> None:
        if movie_length <= 0.0:
            raise ConfigurationError(f"movie_length must be positive, got {movie_length}")
        if window_size < 1:
            raise ConfigurationError(f"window_size must be >= 1, got {window_size}")
        if half_life_minutes <= 0.0:
            raise ConfigurationError(
                f"half_life_minutes must be positive, got {half_life_minutes}"
            )
        self.movie_id = movie_id
        self.movie_length = float(movie_length)
        self._beta = _LN2 / half_life_minutes
        self._windows: dict[VCROperation, deque[float]] = {
            op: deque(maxlen=window_size) for op in VCROperation
        }
        # Decayed counters share one clock; raw integer totals never decay.
        self._decayed: dict[str, float] = {
            "arrivals": 0.0,
            "events": 0.0,
            "exposure": 0.0,
            **{f"op.{op.value}": 0.0 for op in VCROperation},
        }
        self._decayed_at = 0.0
        self.sessions_seen = 0
        self.events_seen = 0
        self.resume_hits = 0
        self.resume_misses = 0

    # ------------------------------------------------------------------
    # Decay bookkeeping.
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        if now < self._decayed_at:
            # Trace replay interleaves sessions, so one session's events can
            # carry timestamps earlier than the latest arrival already seen.
            # Decay is monotone bookkeeping: fold such samples in at the
            # counter clock instead of rejecting them (the decay error is
            # bounded by the session overlap, negligible against half-life).
            now = self._decayed_at
        factor = math.exp(-self._beta * (now - self._decayed_at))
        if factor < 1.0:
            for key in self._decayed:
                self._decayed[key] *= factor
        self._decayed_at = now

    # ------------------------------------------------------------------
    # Ingest.
    # ------------------------------------------------------------------
    def record_session_start(self, now: float) -> None:
        """One session arrival at wall time ``now``."""
        self._advance(now)
        self._decayed["arrivals"] += 1.0
        self.sessions_seen += 1

    def record_operation(self, operation: VCROperation, duration: float, now: float) -> None:
        """One issued VCR operation with its (movie-time) duration."""
        if duration < 0.0 or not math.isfinite(duration):
            raise ConfigurationError(f"duration must be finite and >= 0, got {duration}")
        self._advance(now)
        self._decayed["events"] += 1.0
        self._decayed[f"op.{operation.value}"] += 1.0
        self._windows[operation].append(float(duration))
        self.events_seen += 1

    def record_playback(self, minutes: float, now: float) -> None:
        """Normal-playback exposure (the denominator of the think-time MLE)."""
        if minutes < 0.0:
            raise ConfigurationError(f"playback minutes must be >= 0, got {minutes}")
        self._advance(now)
        self._decayed["exposure"] += minutes

    def record_resume(self, hit: bool, now: float) -> None:
        """One resume outcome against the buffered partitions."""
        self._advance(now)
        if hit:
            self.resume_hits += 1
        else:
            self.resume_misses += 1

    # ------------------------------------------------------------------
    # Estimates.
    # ------------------------------------------------------------------
    def arrival_rate(self, now: float) -> float | None:
        """Decayed-counter arrival-rate estimate (sessions/minute)."""
        self._advance(now)
        # The estimator C*beta is biased low until ~one half-life of data
        # exists; require a few arrivals before reporting anything.
        if self.sessions_seen < 3 or self._decayed["arrivals"] <= 0.0:
            return None
        return self._decayed["arrivals"] * self._beta

    def mix(self, now: float) -> VCRMix | None:
        """Decayed operation mix, None before any operation was seen."""
        self._advance(now)
        weights = [self._decayed[f"op.{op.value}"] for op in VCROperation]
        total = sum(weights)
        if total <= 0.0:
            return None
        p_ff, p_rw, p_pause = (w / total for w in weights)
        # Guard the mix invariant against floating error in the division.
        return VCRMix(p_ff=p_ff, p_rw=p_rw, p_pause=1.0 - p_ff - p_rw)

    def mean_think_time(self, now: float) -> float | None:
        """Censoring-corrected think-time estimate: exposure over events."""
        self._advance(now)
        if self._decayed["events"] <= 0.0 or self._decayed["exposure"] <= 0.0:
            return None
        return self._decayed["exposure"] / self._decayed["events"]

    def durations_of(self, operation: VCROperation) -> tuple[float, ...]:
        """The current duration window of one operation (oldest first)."""
        return tuple(self._windows[operation])

    def snapshot(self, now: float) -> TelemetrySnapshot:
        """Freeze the current statistics for the control plane."""
        return TelemetrySnapshot(
            movie_id=self.movie_id,
            movie_length=self.movie_length,
            at_minutes=now,
            sessions_seen=self.sessions_seen,
            events_seen=self.events_seen,
            mix=self.mix(now),
            arrival_rate=self.arrival_rate(now),
            mean_think_time=self.mean_think_time(now),
            durations={op: self.durations_of(op) for op in VCROperation},
            resume_hits=self.resume_hits,
            resume_misses=self.resume_misses,
        )


class TelemetryHub:
    """Multiplexes per-movie telemetry; speaks observer and replay dialects."""

    def __init__(self, window_size: int = 512, half_life_minutes: float = 240.0) -> None:
        self._window_size = window_size
        self._half_life = half_life_minutes
        self._movies: dict[int, MovieTelemetry] = {}
        self._outage = False
        self.samples_dropped = 0

    # ------------------------------------------------------------------
    # Fault layer.
    # ------------------------------------------------------------------
    @property
    def outage(self) -> bool:
        """True while the telemetry link is down (samples are dropped)."""
        return self._outage

    def set_outage(self, active: bool) -> None:
        """Silence (or restore) the live observer feed.

        During an outage the observer hooks drop their samples — the decayed
        counters simply see a gap, exactly what a dead telemetry link looks
        like to the control plane — while ``movie()`` access and trace replay
        keep working.
        """
        self._outage = bool(active)

    def _drop_if_out(self) -> bool:
        if self._outage:
            self.samples_dropped += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def movie(self, movie_id: int, movie_length: float | None = None) -> MovieTelemetry:
        """The telemetry of one movie, created on first contact."""
        telemetry = self._movies.get(movie_id)
        if telemetry is None:
            if movie_length is None:
                raise ConfigurationError(
                    f"first contact with movie {movie_id} must supply its length"
                )
            telemetry = MovieTelemetry(
                movie_id,
                movie_length,
                window_size=self._window_size,
                half_life_minutes=self._half_life,
            )
            self._movies[movie_id] = telemetry
        return telemetry

    @property
    def movie_ids(self) -> tuple[int, ...]:
        """Every movie id seen so far, in first-contact order."""
        return tuple(self._movies)

    def snapshot(self, now: float) -> dict[int, TelemetrySnapshot]:
        """Snapshots of every tracked movie."""
        return {mid: t.snapshot(now) for mid, t in self._movies.items()}

    # ------------------------------------------------------------------
    # Live-server observer protocol (duck-typed by VODServer/PopularViewer).
    # ------------------------------------------------------------------
    def on_session_start(self, movie_id: int, movie_length: float, now: float) -> None:
        """Observer hook: one admitted session for a popular movie."""
        if self._drop_if_out():
            return
        self.movie(movie_id, movie_length).record_session_start(now)

    def on_vcr(
        self, movie_id: int, operation: VCROperation, duration: float, now: float
    ) -> None:
        """Observer hook: one issued VCR operation with its sampled duration."""
        if self._drop_if_out():
            return
        self.movie(movie_id).record_operation(operation, duration, now)

    def on_playback(self, movie_id: int, minutes: float, now: float) -> None:
        """Observer hook: ``minutes`` of normal playback just elapsed."""
        if self._drop_if_out():
            return
        self.movie(movie_id).record_playback(minutes, now)

    def on_resume(self, movie_id: int, hit: bool, now: float) -> None:
        """Observer hook: one resume outcome (hit or miss)."""
        if self._drop_if_out():
            return
        self.movie(movie_id).record_resume(hit, now)

    def on_session_end(self, movie_id: int, now: float) -> None:
        """Part of the observer protocol; the hub has nothing to book here."""

    # ------------------------------------------------------------------
    # Trace replay.
    # ------------------------------------------------------------------
    def ingest_session(self, session: SessionRecord) -> None:
        """Feed one logged session as if it were observed live.

        Event wall times inside the session are offsets from the session's
        arrival; the hub converts them to absolute minutes so the decay
        clock and the arrival estimator share one timeline.
        """
        telemetry = self.movie(session.movie_id, session.movie_length)
        telemetry.record_session_start(session.arrival_minutes)
        for event in session.events:
            telemetry.record_operation(
                event.operation,
                event.duration,
                session.arrival_minutes + event.at_minutes,
            )
        end = session.ended_at_minutes
        if end is None and session.events:
            end = session.events[-1].at_minutes
        if end is not None:
            exposure = session.playback_minutes()
            telemetry.record_playback(exposure, session.arrival_minutes + end)

    def ingest_trace(self, trace: Trace, up_to_minutes: float | None = None) -> int:
        """Replay sessions in arrival order; returns how many were ingested.

        ``up_to_minutes`` truncates the replay — the CLI uses it to feed the
        hub tick by tick.  Sessions are sorted by arrival because decayed
        counters need a monotone clock.
        """
        ingested = 0
        for session in sorted(trace.sessions, key=lambda s: s.arrival_minutes):
            if up_to_minutes is not None and session.arrival_minutes > up_to_minutes:
                break
            self.ingest_session(session)
            ingested += 1
        return ingested
