"""Drift-gated incremental re-fitting on top of :mod:`repro.workloads.fitting`.

The controller must not refit every tick: fitting five candidate families per
operation per movie is the expensive part of the loop, and under stationary
traffic it would only re-derive the distributions it already holds.  The
:class:`IncrementalRefitter` therefore keeps the currently accepted fit per
``(movie, operation)`` and, on each tick, measures the Kolmogorov–Smirnov
distance between the telemetry window and that fit.  Only operations whose
distance exceeds the drift threshold are refitted; a stationary system settles
into a state where every tick is a handful of CDF evaluations and zero fits.

The threshold must dominate KS sampling noise — for a window of ``n`` i.i.d.
samples drawn *from* the fitted distribution the distance concentrates around
``~1.36/sqrt(n)`` at the 95th percentile (n=100 → 0.136) — so the default of
0.15 keeps a converged fit quiet on realistic window sizes while still firing
on a genuine family or scale change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.vcrop import VCROperation
from repro.distributions import DurationDistribution, ExponentialDuration
from repro.exceptions import ConfigurationError, FittingError
from repro.runtime.telemetry import TelemetrySnapshot
from repro.vod.vcr import VCRBehavior
from repro.workloads.fitting import fit_duration_distribution, ks_distance

__all__ = ["RefitPolicy", "DriftReport", "IncrementalRefitter"]


@dataclass(frozen=True)
class RefitPolicy:
    """Knobs of the drift detector.

    ``ks_threshold`` gates refits (see the module docstring for why 0.15);
    ``min_samples`` is the window floor below which no drift verdict is
    attempted; ``fallback_mean`` seeds operations that have never produced
    enough samples to fit, mirroring :func:`repro.workloads.fitting.fit_behavior`.
    """

    ks_threshold: float = 0.15
    min_samples: int = 30
    fallback_mean: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ks_threshold <= 1.0:
            raise ConfigurationError(
                f"ks_threshold must be in (0, 1], got {self.ks_threshold}"
            )
        if self.min_samples < 2:
            raise ConfigurationError(f"min_samples must be >= 2, got {self.min_samples}")
        if self.fallback_mean <= 0.0:
            raise ConfigurationError(
                f"fallback_mean must be positive, got {self.fallback_mean}"
            )


@dataclass(frozen=True)
class DriftReport:
    """What one refit pass did for one movie."""

    movie_id: int
    at_minutes: float
    ks_by_operation: dict[VCROperation, float]
    refitted: tuple[VCROperation, ...]
    skipped_insufficient: tuple[VCROperation, ...]
    drifted: bool

    def describe(self) -> str:
        """Single-line summary for logs."""
        distances = ", ".join(
            f"{op.value}={self.ks_by_operation[op]:.3f}"
            if not math.isnan(self.ks_by_operation[op])
            else f"{op.value}=n/a"
            for op in VCROperation
        )
        verb = "refit " + ",".join(op.value for op in self.refitted) if self.refitted else "quiet"
        return f"DriftReport(movie={self.movie_id}, KS[{distances}], {verb})"


@dataclass
class _MovieFits:
    """The accepted per-operation fits of one movie."""

    durations: dict[VCROperation, DurationDistribution] = field(default_factory=dict)
    refit_count: int = 0


class IncrementalRefitter:
    """Keeps per-movie fitted distributions current; refits only on drift."""

    def __init__(self, policy: RefitPolicy | None = None) -> None:
        self.policy = policy or RefitPolicy()
        self._fits: dict[int, _MovieFits] = {}
        self.ticks = 0
        self.refits = 0

    # ------------------------------------------------------------------
    # Seeding.
    # ------------------------------------------------------------------
    def seed(self, movie_id: int, behavior: VCRBehavior) -> None:
        """Install an a-priori behaviour (e.g. the offline plan's fit).

        Seeding gives the drift detector a reference from tick one, so the
        first window is *compared* against the offline assumption instead of
        being blindly fitted — exactly the "statistics obtained while the
        movie is displayed" bootstrap the paper sketches.
        """
        self._fits[movie_id] = _MovieFits(durations=dict(behavior.durations))

    def fitted_durations(self, movie_id: int) -> dict[VCROperation, DurationDistribution]:
        """The currently accepted fits of one movie (empty before contact)."""
        fits = self._fits.get(movie_id)
        return dict(fits.durations) if fits else {}

    # ------------------------------------------------------------------
    # The drift-gated tick.
    # ------------------------------------------------------------------
    def observe(self, snapshot: TelemetrySnapshot) -> DriftReport:
        """Compare one telemetry window against the accepted fits.

        Per operation: not enough samples → keep the current fit (or install
        the exponential fallback if there is none); enough samples and the
        current fit is within ``ks_threshold`` → keep it; otherwise refit
        from the window.  A failed refit (degenerate window) also keeps the
        current fit — a live control plane never dies on bad data.
        """
        self.ticks += 1
        fits = self._fits.setdefault(snapshot.movie_id, _MovieFits())
        ks_by_op: dict[VCROperation, float] = {}
        refitted: list[VCROperation] = []
        skipped: list[VCROperation] = []
        for op in VCROperation:
            window = snapshot.durations.get(op, ())
            current = fits.durations.get(op)
            if len(window) < self.policy.min_samples:
                ks_by_op[op] = math.nan
                skipped.append(op)
                if current is None:
                    fits.durations[op] = ExponentialDuration(self.policy.fallback_mean)
                continue
            if current is None:
                # First full window of this operation: fit unconditionally.
                ks_by_op[op] = math.inf
            else:
                ks_by_op[op] = ks_distance(window, current)
                if ks_by_op[op] <= self.policy.ks_threshold:
                    continue
            try:
                fits.durations[op], _ = fit_duration_distribution(window)
            except FittingError:
                if current is None:
                    fits.durations[op] = ExponentialDuration(self.policy.fallback_mean)
                continue
            refitted.append(op)
        if refitted:
            fits.refit_count += 1
            self.refits += 1
        return DriftReport(
            movie_id=snapshot.movie_id,
            at_minutes=snapshot.at_minutes,
            ks_by_operation=ks_by_op,
            refitted=tuple(refitted),
            skipped_insufficient=tuple(skipped),
            drifted=bool(refitted),
        )

    def behavior_for(self, snapshot: TelemetrySnapshot) -> VCRBehavior | None:
        """The full current behaviour of one movie, None before a usable mix.

        Combines the accepted duration fits with the snapshot's decayed
        operation mix and think-time estimate; this is what the controller
        hands to the sizing layer.
        """
        if snapshot.mix is None:
            return None
        fits = self._fits.get(snapshot.movie_id)
        durations = dict(fits.durations) if fits else {}
        for op in VCROperation:
            durations.setdefault(op, ExponentialDuration(self.policy.fallback_mean))
        think = snapshot.mean_think_time
        if think is None or think <= 0.0:
            think = 15.0
        return VCRBehavior(mix=snapshot.mix, durations=durations, mean_think_time=think)
