"""Online capacity control plane: telemetry → re-fit → re-plan → admission.

The paper's sizing procedure (Section 5) assumes the VCR statistics are
"obtained by statistics while the movie is displayed".  The offline packages
exercise that path once — :mod:`repro.workloads` fits a trace and
:mod:`repro.sizing` plans an allocation — but a deployed server must keep the
loop closed while traffic drifts.  This package is that loop:

* :mod:`repro.runtime.telemetry` — streaming per-movie rolling windows of
  VCR durations, operation mix, arrival rates and hit/miss counts with
  exponential decay, fed by a live :class:`repro.vod.server.VODServer` (as an
  observer) or by a JSON-lines trace replay;
* :mod:`repro.runtime.refit` — incremental distribution re-fitting gated by
  a Kolmogorov–Smirnov drift detector, so stationary traffic does no work;
* :mod:`repro.runtime.modelcache` — a keyed, bounded memoisation layer over
  hit-model evaluations and feasible-set sweeps (quantised keys, LRU
  eviction, hit/miss counters);
* :mod:`repro.runtime.controller` — the background re-planner that turns
  drift into an :class:`~repro.runtime.controller.AllocationDelta` under the
  global stream budget, with hysteresis against churn;
* :mod:`repro.runtime.actuator` — applies deltas to a running server
  between batch restarts, never mid-window;
* :mod:`repro.runtime.admission` — gates new sessions against the *current*
  plan plus the Erlang VCR reserve of :mod:`repro.sizing.reservation`;
* :mod:`repro.runtime.circuit` — a circuit breaker around the whole cycle:
  repeated failures open it and the server coasts on the last-good plan.
"""

from __future__ import annotations

from repro.runtime.actuator import ActuationReport, PlanActuator
from repro.runtime.admission import GateDecision, RuntimeAdmissionGate
from repro.runtime.circuit import CircuitBreaker, GuardedControlLoop
from repro.runtime.controller import (
    AllocationDelta,
    CapacityController,
    ControllerPolicy,
    MovieChange,
    MovieSlot,
)
from repro.runtime.modelcache import CacheStats, LRUCache, ModelEvaluationCache
from repro.runtime.refit import DriftReport, IncrementalRefitter, RefitPolicy
from repro.runtime.telemetry import MovieTelemetry, TelemetryHub, TelemetrySnapshot

__all__ = [
    "ActuationReport",
    "PlanActuator",
    "GateDecision",
    "RuntimeAdmissionGate",
    "CircuitBreaker",
    "GuardedControlLoop",
    "AllocationDelta",
    "CapacityController",
    "ControllerPolicy",
    "MovieChange",
    "MovieSlot",
    "CacheStats",
    "LRUCache",
    "ModelEvaluationCache",
    "DriftReport",
    "IncrementalRefitter",
    "RefitPolicy",
    "MovieTelemetry",
    "TelemetryHub",
    "TelemetrySnapshot",
]
