"""The background re-planner: drift in, :class:`AllocationDelta` out.

Each tick closes the paper's loop end to end: snapshot the telemetry,
let the drift detector decide whether any movie's statistics moved, rebuild
the :class:`~repro.sizing.feasible.MovieSizingSpec` set from the refreshed
fits, re-run the Section-5 optimisation under the global stream budget, and
— only if the new plan is genuinely better — emit a delta for the actuator.

Hysteresis keeps the plan from churning.  Three gates run in order:

1. **stationarity** — no movie drifted and a plan exists: do nothing (the
   property the test suite pins down: stationary traffic converges to zero
   deltas);
2. **cool-down** — a plan was accepted less than ``cooldown_minutes`` ago:
   wait, re-plans are disruptive even when beneficial;
3. **min-improvement** — the candidate must beat the incumbent's score by a
   fraction ``min_improvement``, where the score is the predicted offered
   VCR-stream load (erlangs) of :class:`~repro.sizing.reservation.VCRLoadModel`
   summed over movies — the paper's own argument that a better hit
   probability shrinks the stream reserve, evaluated under *current*
   telemetry for both plans so the incumbent is not judged on stale numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.core.parameters import SystemConfiguration, VCRRates
from repro.exceptions import (
    ActuationRetryExhausted,
    ConfigurationError,
    InfeasibleError,
)
from repro.obs.log import get_logger
from repro.runtime.modelcache import ModelEvaluationCache
from repro.runtime.refit import IncrementalRefitter, RefitPolicy
from repro.runtime.telemetry import TelemetryHub, TelemetrySnapshot
from repro.sizing.feasible import MovieSizingSpec
from repro.sizing.optimizer import AllocationResult
from repro.sizing.planner import SystemSizer
from repro.sizing.reservation import VCRLoadModel, min_servers_for_blocking
from repro.vod.vcr import VCRBehavior

__all__ = [
    "MovieSlot",
    "ControllerPolicy",
    "MovieChange",
    "AllocationDelta",
    "CapacityController",
]

_log = get_logger("runtime.controller")


@dataclass(frozen=True)
class MovieSlot:
    """The static contract of one movie under control.

    Telemetry supplies the statistics; the slot supplies what no amount of
    measurement changes — identity, geometry and the service-level targets
    ``w*`` and ``P*`` the operator signed up for.
    """

    movie_id: int
    name: str
    length: float
    max_wait: float
    p_star: float = 0.5
    rates: VCRRates = field(default_factory=VCRRates.paper_default)

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ConfigurationError(f"length must be positive, got {self.length}")
        if not 0.0 < self.max_wait <= self.length:
            raise ConfigurationError(
                f"max_wait must be in (0, length], got {self.max_wait}"
            )


@dataclass(frozen=True)
class ControllerPolicy:
    """Hysteresis and budget knobs of the control loop."""

    stream_budget: int | None = None
    buffer_budget_minutes: float | None = None
    cooldown_minutes: float = 60.0
    min_improvement: float = 0.02
    blocking_target: float = 0.01
    include_end_hit: bool = True
    max_requeue_attempts: int = 3

    def __post_init__(self) -> None:
        if self.max_requeue_attempts < 1:
            raise ConfigurationError(
                f"max_requeue_attempts must be >= 1, got {self.max_requeue_attempts}"
            )
        if self.cooldown_minutes < 0.0:
            raise ConfigurationError(
                f"cooldown_minutes must be >= 0, got {self.cooldown_minutes}"
            )
        if self.min_improvement < 0.0:
            raise ConfigurationError(
                f"min_improvement must be >= 0, got {self.min_improvement}"
            )
        if not 0.0 < self.blocking_target < 1.0:
            raise ConfigurationError(
                f"blocking_target must be in (0, 1), got {self.blocking_target}"
            )


@dataclass(frozen=True)
class MovieChange:
    """One movie's reallocation inside a delta."""

    movie_id: int
    name: str
    old_streams: int | None
    new_streams: int
    old_buffer_minutes: float | None
    new_buffer_minutes: float
    hit_probability: float

    @property
    def stream_delta(self) -> int:
        """Streams gained (positive) or released (negative)."""
        return self.new_streams - (self.old_streams or 0)


@dataclass(frozen=True)
class AllocationDelta:
    """An accepted re-plan: the actuator's work order.

    ``configurations`` is the complete new deployment map (every controlled
    movie, changed or not); ``changes`` lists only the movies whose ``(B, n)``
    actually moved.  ``reserve_streams`` is the Erlang-B VCR reserve the new
    plan implies at the policy's blocking target.
    """

    at_minutes: float
    configurations: dict[int, SystemConfiguration]
    changes: tuple[MovieChange, ...]
    result: AllocationResult
    reserve_streams: int
    old_score: float | None
    new_score: float
    reason: str

    @property
    def is_reallocation(self) -> bool:
        """False for the bootstrap delta (no incumbent plan existed)."""
        return self.old_score is not None

    @property
    def total_streams(self) -> int:
        """``Σ n_i`` of the new plan."""
        return self.result.total_streams

    def describe(self) -> str:
        """Single-line summary for logs."""
        moves = ", ".join(
            f"{c.name}:{c.old_streams}->{c.new_streams}" for c in self.changes
        ) or "bootstrap"
        score = (
            f"{self.old_score:.2f}->{self.new_score:.2f} erl"
            if self.old_score is not None
            else f"{self.new_score:.2f} erl"
        )
        return (
            f"AllocationDelta(t={self.at_minutes:g}, {moves}, load {score}, "
            f"reserve={self.reserve_streams}, {self.reason})"
        )


class CapacityController:
    """Periodically re-plans the popular movies' ``(B_i, n_i)`` allocation."""

    def __init__(
        self,
        slots: Sequence[MovieSlot],
        telemetry: TelemetryHub,
        refitter: IncrementalRefitter | None = None,
        cache: ModelEvaluationCache | None = None,
        policy: ControllerPolicy | None = None,
        initial_behaviors: Mapping[int, VCRBehavior] | None = None,
        initial_plan: Mapping[int, SystemConfiguration] | None = None,
        tracer=None,
    ) -> None:
        if not slots:
            raise ConfigurationError("the controller needs at least one movie slot")
        ids = [slot.movie_id for slot in slots]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"movie ids must be unique, got {ids}")
        self._slots = {slot.movie_id: slot for slot in slots}
        self._telemetry = telemetry
        self._refitter = refitter or IncrementalRefitter(RefitPolicy())
        self._cache = cache or ModelEvaluationCache()
        self.policy = policy or ControllerPolicy()
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._sizer: SystemSizer | None = None
        self._current: dict[int, SystemConfiguration] = dict(initial_plan or {})
        self._current_result: AllocationResult | None = None
        self._last_accepted_at: float | None = None
        # Seed the drift detector so the first window is compared against the
        # offline assumption, and treat the given plan as the incumbent.
        for movie_id, behavior in (initial_behaviors or {}).items():
            self._refitter.seed(movie_id, behavior)
        self.ticks = 0
        self.deltas_emitted = 0
        self.skipped_stationary = 0
        self.skipped_cooldown = 0
        self.skipped_no_improvement = 0
        self.skipped_insufficient_data = 0
        self.infeasible_plans = 0
        self.requeued_actuations = 0
        self._pending_requeue: AllocationDelta | None = None
        self._requeue_attempts = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def current_allocation(self) -> dict[int, SystemConfiguration]:
        """The incumbent deployment map (possibly the initial plan)."""
        return dict(self._current)

    @property
    def current_result(self) -> AllocationResult | None:
        """The optimiser result behind the incumbent plan, if we produced it."""
        return self._current_result

    @property
    def refitter(self) -> IncrementalRefitter:
        """The drift detector (exposed for diagnostics)."""
        return self._refitter

    @property
    def cache(self) -> ModelEvaluationCache:
        """The shared evaluation cache (exposed for diagnostics)."""
        return self._cache

    def counters(self) -> dict[str, int]:
        """The loop's cumulative outcome counters."""
        return {
            "ticks": self.ticks,
            "deltas_emitted": self.deltas_emitted,
            "skipped_stationary": self.skipped_stationary,
            "skipped_cooldown": self.skipped_cooldown,
            "skipped_no_improvement": self.skipped_no_improvement,
            "skipped_insufficient_data": self.skipped_insufficient_data,
            "infeasible_plans": self.infeasible_plans,
            "requeued_actuations": self.requeued_actuations,
        }

    # ------------------------------------------------------------------
    # Actuation feedback.
    # ------------------------------------------------------------------
    def notify_actuation(self, report, delta: AllocationDelta) -> None:
        """Learn how the last delta landed; queue any remainder for re-try.

        A fully-applied report clears the retry state.  A partial one keeps
        only the rejected changes (as a new delta with the same target map)
        so the next :meth:`tick` re-emits exactly the unfinished work instead
        of re-planning from scratch.  Attempts are bounded by
        ``policy.max_requeue_attempts`` — beyond that the loop is wedged on
        something re-trying cannot fix and :class:`ActuationRetryExhausted`
        tells the caller to fall back (the circuit breaker's job).
        """
        if report.fully_applied:
            self._pending_requeue = None
            self._requeue_attempts = 0
            return
        self._requeue_attempts += 1
        rejected = tuple(change for change, _ in report.rejected)
        if self._requeue_attempts >= self.policy.max_requeue_attempts:
            self._pending_requeue = None
            names = ", ".join(change.name for change in rejected)
            raise ActuationRetryExhausted(
                f"gave up re-queueing {len(rejected)} rejected change(s) [{names}] "
                f"after {self._requeue_attempts} attempts"
            )
        self._pending_requeue = replace(
            delta, changes=rejected, reason="partial actuation re-queue"
        )

    # ------------------------------------------------------------------
    # The tick.
    # ------------------------------------------------------------------
    def _trace_decision(self, now: float, outcome: str) -> None:
        _log.debug("tick %d at t=%g: %s", self.ticks, now, outcome)
        if self._tracer is not None:
            self._tracer.emit(
                "replan_decision", now, outcome=outcome, tick=self.ticks
            )

    def tick(self, now: float) -> AllocationDelta | None:
        """Run one control cycle; returns a delta only when the plan moves."""
        self.ticks += 1
        if self._pending_requeue is not None:
            # Finish the half-applied delta before considering new plans —
            # the deployed state is not yet what the incumbent map claims.
            delta = replace(self._pending_requeue, at_minutes=now)
            self._pending_requeue = None
            self.requeued_actuations += 1
            self._trace_decision(now, "requeue")
            return delta
        snapshots = {
            movie_id: telemetry.snapshot(now)
            for movie_id, telemetry in (
                (mid, self._telemetry.movie(mid, self._slots[mid].length))
                for mid in self._slots
            )
        }
        drift_reports = [self._refitter.observe(snap) for snap in snapshots.values()]
        drifted = any(report.drifted for report in drift_reports)

        bootstrap = not self._current
        if not bootstrap and not drifted:
            self.skipped_stationary += 1
            self._trace_decision(now, "stationary")
            return None
        if (
            not bootstrap
            and self._last_accepted_at is not None
            and now - self._last_accepted_at < self.policy.cooldown_minutes
        ):
            self.skipped_cooldown += 1
            self._trace_decision(now, "cooldown")
            return None

        specs = self._build_specs(snapshots)
        if specs is None:
            self.skipped_insufficient_data += 1
            self._trace_decision(now, "insufficient_data")
            return None

        try:
            result = self._solve(specs)
        except InfeasibleError:
            self.infeasible_plans += 1
            self._trace_decision(now, "infeasible")
            return None
        if (
            self.policy.buffer_budget_minutes is not None
            and result.total_buffer_minutes > self.policy.buffer_budget_minutes + 1e-9
        ):
            self.infeasible_plans += 1
            self._trace_decision(now, "infeasible")
            return None

        new_map = result.as_configuration_map(
            {slot.name: slot.movie_id for slot in self._slots.values()}
        )
        new_score = self._score(new_map, specs, snapshots)
        old_score: float | None = None
        if not bootstrap:
            if new_map == self._current:
                # The optimum did not move; treat as stationary for hysteresis.
                self.skipped_no_improvement += 1
                self._trace_decision(now, "no_improvement")
                return None
            old_score = self._score(self._current, specs, snapshots)
            required = old_score * (1.0 - self.policy.min_improvement)
            if new_score > required:
                self.skipped_no_improvement += 1
                self._trace_decision(now, "no_improvement")
                return None

        changes = []
        for movie_id, config in sorted(new_map.items()):
            old = self._current.get(movie_id)
            if old is not None and old == config:
                continue
            allocation = result.by_name(self._slots[movie_id].name)
            changes.append(
                MovieChange(
                    movie_id=movie_id,
                    name=self._slots[movie_id].name,
                    old_streams=old.num_partitions if old else None,
                    new_streams=config.num_partitions,
                    old_buffer_minutes=old.buffer_minutes if old else None,
                    new_buffer_minutes=config.buffer_minutes,
                    hit_probability=allocation.hit_probability,
                )
            )
        delta = AllocationDelta(
            at_minutes=now,
            configurations=new_map,
            changes=tuple(changes),
            result=result,
            reserve_streams=self._reserve_for(new_score),
            old_score=old_score,
            new_score=new_score,
            reason="bootstrap plan" if bootstrap else "drift re-plan accepted",
        )
        self._current = dict(new_map)
        self._current_result = result
        self._last_accepted_at = now
        self.deltas_emitted += 1
        self._trace_decision(now, "bootstrap" if bootstrap else "accepted")
        _log.info("%s", delta.describe())
        return delta

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _build_specs(
        self, snapshots: Mapping[int, TelemetrySnapshot]
    ) -> list[MovieSizingSpec] | None:
        """Sizing specs from slots + current fits; None while data is thin."""
        specs: list[MovieSizingSpec] = []
        for movie_id, slot in self._slots.items():
            behavior = self._refitter.behavior_for(snapshots[movie_id])
            if behavior is None:
                return None
            specs.append(
                MovieSizingSpec(
                    name=slot.name,
                    length=slot.length,
                    max_wait=slot.max_wait,
                    durations=dict(behavior.durations),
                    p_star=slot.p_star,
                    mix=behavior.mix,
                    rates=slot.rates,
                )
            )
        return specs

    def _solve(self, specs: list[MovieSizingSpec]) -> AllocationResult:
        factory = lambda spec, end_hit: self._cache.feasible_set(  # noqa: E731
            spec, include_end_hit=end_hit
        )
        if self._sizer is None:
            self._sizer = SystemSizer(
                specs,
                include_end_hit=self.policy.include_end_hit,
                feasible_factory=factory,
            )
        else:
            # Warm restart: undrifted movies keep their evaluated frontiers.
            self._sizer = self._sizer.refreshed(specs)
        return self._sizer.solve(self.policy.stream_budget).result

    def _score(
        self,
        allocation: Mapping[int, SystemConfiguration],
        specs: Sequence[MovieSizingSpec],
        snapshots: Mapping[int, TelemetrySnapshot],
    ) -> float:
        """Predicted offered VCR-stream load (erlangs) under one plan.

        Both the incumbent and the candidate are scored with *current*
        statistics, so the comparison isolates the plan itself.  Movies whose
        arrival rate is still unknown contribute nothing to either side.
        """
        by_name = {spec.name: spec for spec in specs}
        total = 0.0
        for movie_id, config in allocation.items():
            slot = self._slots.get(movie_id)
            if slot is None:
                continue
            snapshot = snapshots.get(movie_id)
            if snapshot is None or snapshot.arrival_rate is None:
                continue
            spec = by_name[slot.name]
            model = self._cache.model_for(
                spec, include_end_hit=self.policy.include_end_hit
            )
            think = snapshot.mean_think_time
            load = VCRLoadModel(
                model=model,
                config=config,
                viewer_arrival_rate=snapshot.arrival_rate,
                mean_think_time=think if think and think > 0.0 else 15.0,
            )
            total += load.offered_load()
        return total

    def _reserve_for(self, offered_load: float) -> int:
        if offered_load <= 0.0:
            return 0
        return min_servers_for_blocking(offered_load, self.policy.blocking_target)
