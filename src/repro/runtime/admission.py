"""Plan-aware admission gating for the running server.

The static :class:`~repro.vod.admission.AdmissionController` admits a
long-tail session whenever a stream is free *right now* — it has no notion
of the commitments the plan has made.  Under a popularity shift that is
precisely how the popular titles starve: tail sessions soak up the streams
the planner intended for restarts and the VCR reserve, and each one pins its
stream for an entire movie length.

:class:`RuntimeAdmissionGate` closes that hole.  It tracks the currently
deployed plan (via :meth:`adopt`, called by the actuator on every delta) and
screens arrivals *before* routing:

* a session for a **planned** movie is always allowed — the plan's streams
  and buffer already cover it;
* a **tail** session is allowed only if, after taking its dedicated stream,
  the free pool still covers the plan's unfilled playback slots plus the
  Erlang-B VCR reserve of :mod:`repro.sizing.reservation` — the paper's
  argument that VCR service lives or dies on pre-allocated headroom, applied
  at admission time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.runtime.controller import AllocationDelta
from repro.vod.movie import Movie
from repro.vod.streams import StreamPool, StreamPurpose

__all__ = ["GateDecision", "RuntimeAdmissionGate"]


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict on one arrival."""

    allowed: bool
    reason: str


class RuntimeAdmissionGate:
    """Screens arrivals against the deployed plan plus the VCR reserve."""

    def __init__(
        self, planned_streams: int = 0, reserve_streams: int = 0, planned_movie_ids=()
    ) -> None:
        if planned_streams < 0 or reserve_streams < 0:
            raise ConfigurationError("planned/reserve stream counts must be >= 0")
        self.planned_streams = planned_streams
        self.reserve_streams = reserve_streams
        self._planned_ids = set(planned_movie_ids)
        self.allowed_popular = 0
        self.allowed_tail = 0
        self.denied_tail = 0

    # ------------------------------------------------------------------
    # Plan adoption.
    # ------------------------------------------------------------------
    def adopt(self, delta: AllocationDelta) -> None:
        """Track a newly actuated plan (called by the actuator)."""
        self.planned_streams = delta.total_streams
        self.reserve_streams = delta.reserve_streams
        self._planned_ids = set(delta.configurations)

    def update(self, planned_streams: int, reserve_streams: int, planned_movie_ids) -> None:
        """Install plan numbers directly (static deployments, tests)."""
        self.planned_streams = planned_streams
        self.reserve_streams = reserve_streams
        self._planned_ids = set(planned_movie_ids)

    # ------------------------------------------------------------------
    # Screening (the server calls this before routing an arrival).
    # ------------------------------------------------------------------
    def screen(
        self, movie: Movie, streams: StreamPool, now: float, context=None
    ) -> GateDecision:
        """Admit or veto one arrival against the current commitments.

        ``context`` is an optional request-scoped
        :class:`~repro.obs.context.RequestContext`; screening enters a
        ``gate`` span on it so the admission decision's ``parent_span``
        names this layer in the causal chain.
        """
        if context is not None:
            context.enter("gate")
        if movie.movie_id in self._planned_ids:
            self.allowed_popular += 1
            return GateDecision(allowed=True, reason="planned movie: covered by plan")
        # Streams the plan still intends to claim for playback restarts.
        unfilled_playback = max(
            0, self.planned_streams - streams.held_for(StreamPurpose.PLAYBACK)
        )
        committed = unfilled_playback + self.reserve_streams
        if streams.available - 1 >= committed:
            self.allowed_tail += 1
            return GateDecision(allowed=True, reason="tail: headroom above reserve")
        self.denied_tail += 1
        return GateDecision(
            allowed=False,
            reason=(
                f"tail denied: {streams.available} free <= "
                f"{unfilled_playback} unfilled playback + "
                f"{self.reserve_streams} VCR reserve"
            ),
        )
