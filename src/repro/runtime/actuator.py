"""Applies :class:`AllocationDelta` work orders to a running server.

The actuator is deliberately thin: all of the *deciding* happened in the
controller, and all of the *mechanics* of a safe switch live in the vod layer
(:meth:`~repro.vod.admission.AdmissionController.reconfigure_movie` moves the
buffer reservation transactionally, and the restart loop re-reads its spacing
each cycle so a new ``n`` takes effect at the next restart boundary — never
mid-window).  What remains here is ordering and accounting:

* **shrinks before grows** — released buffer funds the grows, so a delta
  that is feasible in aggregate is applied without a transient overcommit;
* a grow that still does not fit (the pool is shared with reservations the
  controller does not own) is **rejected**, recorded, and does not stop the
  remaining changes — a half-applied delta is better than a dead loop, and
  the next tick re-plans from the deployed state anyway;
* an attached :class:`~repro.runtime.admission.RuntimeAdmissionGate` is
  told to adopt the new plan so admissions are judged against what is
  actually deployed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ResourceError
from repro.obs.registry import TIER_STABLE
from repro.runtime.controller import AllocationDelta, MovieChange

__all__ = ["ActuationReport", "PlanActuator"]


@dataclass(frozen=True)
class ActuationReport:
    """What one delta application actually did."""

    at_minutes: float
    applied: tuple[MovieChange, ...]
    rejected: tuple[tuple[MovieChange, str], ...]

    @property
    def fully_applied(self) -> bool:
        """True when every change landed."""
        return not self.rejected

    def describe(self) -> str:
        """Single-line summary for logs."""
        ok = ", ".join(f"{c.name}:{c.old_streams}->{c.new_streams}" for c in self.applied)
        bad = ", ".join(f"{c.name}({why})" for c, why in self.rejected)
        return (
            f"ActuationReport(t={self.at_minutes:g}, applied=[{ok or '-'}]"
            + (f", rejected=[{bad}]" if bad else "")
            + ")"
        )


class PlanActuator:
    """Pushes accepted deltas into a :class:`~repro.vod.server.VODServer`."""

    def __init__(self, server, gate=None, tracer=None, registry=None) -> None:
        self._server = server
        self._gate = gate
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._partial_counter = (
            registry.counter(
                "repro_partial_actuations_total",
                "Deltas that landed with at least one change rejected.",
                tier=TIER_STABLE,
            )
            if registry is not None
            else None
        )
        self.deltas_applied = 0
        self.changes_applied = 0
        self.changes_rejected = 0

    def apply(self, delta: AllocationDelta, context=None) -> ActuationReport:
        """Apply one delta, shrink-first; never raises on a failed grow.

        ``context`` is the optional request-scoped trace context whose tick
        triggered this actuation; its ids link the ``plan_actuation`` event
        into the request's causal chain (null outside a request scope).
        """
        # Buffer shrinks first: ascending buffer delta puts the movies that
        # release space ahead of the movies that need it.
        ordered = sorted(
            delta.changes,
            key=lambda c: c.new_buffer_minutes - (c.old_buffer_minutes or 0.0),
        )
        applied: list[MovieChange] = []
        rejected: list[tuple[MovieChange, str]] = []
        for change in ordered:
            config = delta.configurations[change.movie_id]
            try:
                self._server.reconfigure_movie(change.movie_id, config)
            except ResourceError as exc:
                rejected.append((change, str(exc)))
                continue
            applied.append(change)
        if self._gate is not None:
            self._gate.adopt(delta)
        self.deltas_applied += 1
        self.changes_applied += len(applied)
        self.changes_rejected += len(rejected)
        if rejected and self._partial_counter is not None:
            self._partial_counter.inc()
        if context is not None:
            context.enter("actuate")
        if self._tracer is not None:
            self._tracer.emit(
                "plan_actuation",
                delta.at_minutes,
                applied=len(applied),
                rejected=len(rejected),
                trace_id=context.trace_id if context is not None else None,
                parent_span=context.current_span if context is not None else None,
            )
            for change in applied:
                config = delta.configurations[change.movie_id]
                self._tracer.emit(
                    "movie_config",
                    delta.at_minutes,
                    movie=change.movie_id,
                    name=change.name,
                    length=config.movie_length,
                    streams=config.num_partitions,
                    buffer_minutes=config.buffer_minutes,
                    predicted_hit=change.hit_probability,
                )
        return ActuationReport(
            at_minutes=delta.at_minutes,
            applied=tuple(applied),
            rejected=tuple(rejected),
        )
