"""Keyed, bounded memoisation for hit-model and feasible-set evaluations.

The controller re-plans on every accepted drift, and a re-plan sweeps the
``B = l − n·w`` line of every movie through :class:`HitProbabilityModel` —
tens of quadrature-heavy evaluations per movie per tick.  Between ticks most
of that work repeats: only the drifted movies change, and even a drifted
movie usually changes only its duration fits, not its length or wait target.

:class:`ModelEvaluationCache` exploits this with two bounded LRU maps:

* a **model cache** keyed by the structural signature of a
  :class:`~repro.sizing.feasible.MovieSizingSpec` (name, geometry, mix,
  rates, and the recursive parameter tuple of every duration distribution),
  so unchanged movies reuse the constructed model — including its truncated
  distributions and CDF transforms, the expensive part;
* an **evaluation cache** keyed by ``(spec signature, n, quantised B)``, so
  repeated frontier sweeps (bisection in ``max_streams``, the optimiser's
  marginal-gain walk) cost a dictionary lookup each.

Buffer minutes are quantised onto a fixed grid before keying — floats that
differ below the grid resolution are physically the same configuration and
must not miss.  Hit/miss/eviction counters are exposed per cache so the
benchmark suite (and operators) can verify the cache is actually working.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

from repro.core.hitmodel import HitProbabilityModel
from repro.exceptions import ConfigurationError
from repro.sizing.feasible import FeasiblePoint, FeasibleSet, MovieSizingSpec, spec_signature

__all__ = ["CacheStats", "LRUCache", "ModelEvaluationCache", "CachedFeasibleSet"]

#: Module-private miss marker.  ``LRUCache.get`` must be able to cache *any*
#: value — including ``None`` and falsy ones — so a miss is signalled by this
#: sentinel (or a caller-supplied default), never by ``None``.
_MISS = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time view of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    entries: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """A bounded mapping with least-recently-used eviction and counters."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default=None):
        """The cached value, or ``default`` on a miss (misses are counted).

        A cached value may legitimately be ``None`` (or otherwise falsy);
        callers that need to distinguish a miss from a cached ``None`` pass
        their own sentinel as ``default`` and compare with ``is``.
        """
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._data.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) a value, evicting the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Membership tests do not disturb recency or the counters.
        return key in self._data

    def clear(self) -> None:
        """Drop every entry; the counters survive (they are cumulative)."""
        self._data.clear()

    @property
    def stats(self) -> CacheStats:
        """The current counters."""
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            entries=len(self._data),
            maxsize=self._maxsize,
        )


class ModelEvaluationCache:
    """Shared memoisation layer for model construction and ``P(hit)`` sweeps."""

    def __init__(
        self,
        max_models: int = 64,
        max_evaluations: int = 8192,
        buffer_quantum_minutes: float = 1e-4,
    ) -> None:
        if buffer_quantum_minutes <= 0.0:
            raise ConfigurationError(
                f"buffer_quantum_minutes must be positive, got {buffer_quantum_minutes}"
            )
        self._models = LRUCache(max_models)
        self._evaluations = LRUCache(max_evaluations)
        self._quantum = buffer_quantum_minutes

    # ------------------------------------------------------------------
    # Keys.
    # ------------------------------------------------------------------
    def _quantise(self, buffer_minutes: float) -> int:
        return round(buffer_minutes / self._quantum)

    # ------------------------------------------------------------------
    # Cached lookups.
    # ------------------------------------------------------------------
    def model_for(
        self, spec: MovieSizingSpec, include_end_hit: bool = True
    ) -> HitProbabilityModel:
        """The hit model of a spec, constructed at most once per signature."""
        key = (spec_signature(spec), include_end_hit)
        model = self._models.get(key, _MISS)
        if model is _MISS:
            model = spec.build_model(include_end_hit=include_end_hit)
            self._models.put(key, model)
        return model  # type: ignore[return-value]

    def hit_probability(
        self,
        spec: MovieSizingSpec,
        num_streams: int,
        buffer_minutes: float,
        include_end_hit: bool = True,
    ) -> float:
        """``P(hit)`` at one ``(n, B)`` point, memoised on the quantised key."""
        return self.hit_probability_many(
            spec, [(num_streams, buffer_minutes)], include_end_hit=include_end_hit
        )[0]

    def hit_probability_many(
        self,
        spec: MovieSizingSpec,
        points: "list[tuple[int, float]]",
        include_end_hit: bool = True,
    ) -> list[float]:
        """``P(hit)`` at many ``(n, B)`` points, with bulk cache semantics.

        Every requested point performs exactly one cache lookup (so the
        hit/miss counters advance as if the points had been requested one by
        one), misses are deduplicated on the quantised key, evaluated in a
        single :meth:`HitProbabilityModel.hit_probability_batch` call, and
        stored individually (preserving LRU eviction accounting).
        """
        sig = spec_signature(spec)
        keys = [
            (sig, include_end_hit, int(n), self._quantise(b)) for n, b in points
        ]
        out: list = [None] * len(points)
        missing: "OrderedDict[tuple, list[int]]" = OrderedDict()
        for i, key in enumerate(keys):
            cached = self._evaluations.get(key, _MISS)
            if cached is _MISS:
                missing.setdefault(key, []).append(i)
            else:
                out[i] = cached
        if missing:
            model = self.model_for(spec, include_end_hit=include_end_hit)
            configs = [
                model.configuration(int(points[idxs[0]][0]), points[idxs[0]][1])
                for idxs in missing.values()
            ]
            values = model.hit_probability_batch(configs)
            for key, idxs, value in zip(missing, missing.values(), values):
                self._evaluations.put(key, value)
                for i in idxs:
                    out[i] = value
        return out

    def feasible_set(
        self, spec: MovieSizingSpec, include_end_hit: bool = True, points=None
    ) -> "CachedFeasibleSet":
        """A :class:`FeasibleSet` whose sweeps route through this cache.

        ``points`` warm-starts the per-set frontier cache (e.g. with a
        parallel sweep's already-evaluated :class:`FeasiblePoint` rows).
        """
        return CachedFeasibleSet(spec, self, include_end_hit=include_end_hit, points=points)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def model_stats(self) -> CacheStats:
        """Counters of the model-construction cache."""
        return self._models.stats

    @property
    def evaluation_stats(self) -> CacheStats:
        """Counters of the ``P(hit)`` point cache."""
        return self._evaluations.stats

    def stats(self) -> dict[str, CacheStats]:
        """Both caches' counters, keyed for reports."""
        return {"models": self.model_stats, "evaluations": self.evaluation_stats}

    def clear(self) -> None:
        """Drop all cached models and evaluations (counters survive)."""
        self._models.clear()
        self._evaluations.clear()


class CachedFeasibleSet(FeasibleSet):
    """A feasibility frontier that reads and feeds a shared evaluation cache.

    Identical contract to :class:`FeasibleSet`; the only difference is that
    :meth:`point` resolves ``P(hit)`` through the shared
    :class:`ModelEvaluationCache`, so two frontiers built for the same spec —
    e.g. this tick's re-plan and the next tick's — share every evaluation.
    """

    def __init__(
        self,
        spec: MovieSizingSpec,
        shared_cache: ModelEvaluationCache,
        include_end_hit: bool = True,
        points=None,
    ) -> None:
        super().__init__(spec, include_end_hit=include_end_hit, points=points)
        self._shared = shared_cache

    @property
    def model(self) -> HitProbabilityModel:
        """The hit model, resolved through the shared cache on first use."""
        if self._model is None:
            self._model = self._shared.model_for(
                self.spec, include_end_hit=self._include_end_hit
            )
        return self._model

    def _evaluate_missing(self, stream_counts: list[int]) -> None:
        # Same bulk evaluation as the base class, but resolved through the
        # shared evaluation cache — one lookup per point, one batched model
        # call for the misses.
        buffers = [self._buffer_for(n) for n in stream_counts]
        values = self._shared.hit_probability_many(
            self.spec,
            list(zip(stream_counts, buffers)),
            include_end_hit=self._include_end_hit,
        )
        for n, b, value in zip(stream_counts, buffers, values):
            self._cache[n] = FeasiblePoint(
                num_streams=n, buffer_minutes=b, hit_probability=value
            )
