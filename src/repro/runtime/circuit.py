"""A circuit breaker around the re-planning loop: fail fast, coast on last-good.

The control plane is an *optimisation*, not a prerequisite — the server keeps
serving with whatever ``(B_i, n_i)`` map is deployed even when every re-plan
attempt dies.  The breaker encodes that asymmetry: after
``failure_threshold`` consecutive tick failures (solver blow-ups, refit
errors, actuation retries exhausted) it **opens**, and the guarded loop stops
calling into the controller for a bounded, exponentially-growing stretch of
*simulation* time.  While open, :meth:`GuardedControlLoop.run_tick` returns
``None`` and the server coasts on the last allocation that fully actuated.

After the backoff expires, one probe tick runs **half-open**: success closes
the breaker and resets the backoff, another failure re-opens it with doubled
backoff (capped).  All timing is in sim minutes from the caller's clock —
nothing here reads a wall clock, so a degraded run replays byte-identically.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, DegradedModeError, ReproError
from repro.obs.log import get_logger
from repro.runtime.controller import AllocationDelta

__all__ = ["CircuitBreaker", "GuardedControlLoop"]

_log = get_logger("runtime.circuit")

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with sim-clock exponential backoff."""

    def __init__(
        self,
        failure_threshold: int = 3,
        base_backoff_minutes: float = 30.0,
        backoff_factor: float = 2.0,
        max_backoff_minutes: float = 480.0,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if base_backoff_minutes <= 0.0:
            raise ConfigurationError(
                f"base_backoff_minutes must be positive, got {base_backoff_minutes}"
            )
        if backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        if max_backoff_minutes < base_backoff_minutes:
            raise ConfigurationError(
                "max_backoff_minutes must be >= base_backoff_minutes, got "
                f"{max_backoff_minutes} < {base_backoff_minutes}"
            )
        self._threshold = failure_threshold
        self._base = base_backoff_minutes
        self._factor = backoff_factor
        self._cap = max_backoff_minutes
        self._state = _CLOSED
        self._failures = 0
        self._opens = 0
        self._retry_at: float | None = None

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        return self._failures

    @property
    def retry_at(self) -> float | None:
        """Sim time (minutes) when an open breaker allows a probe."""
        return self._retry_at

    def current_backoff(self) -> float:
        """The backoff window (minutes) the next open would impose."""
        exponent = max(0, self._opens - 1)
        return min(self._cap, self._base * self._factor**exponent)

    # ------------------------------------------------------------------
    # The protocol.
    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """May a tick run at ``now``?  Promotes open to half-open on expiry."""
        if self._state == _CLOSED:
            return True
        if self._state == _OPEN:
            if self._retry_at is not None and now >= self._retry_at:
                self._state = _HALF_OPEN
                _log.info("breaker half-open at t=%g: probing one tick", now)
                return True
            return False
        # Half-open: the single probe is already in flight this tick; the
        # caller resolves it via record_success / record_failure.
        return True

    def record_success(self) -> None:
        """A tick completed: close the breaker and forget the history."""
        self._state = _CLOSED
        self._failures = 0
        self._opens = 0
        self._retry_at = None

    def record_failure(self, now: float) -> None:
        """A tick failed; open the breaker once the threshold is crossed."""
        self._failures += 1
        tripped = self._failures >= self._threshold
        if self._state == _HALF_OPEN or tripped:
            self._opens += 1
            backoff = self.current_backoff()
            self._state = _OPEN
            self._retry_at = now + backoff
            _log.warning(
                "breaker open at t=%g after %d failure(s): retry at t=%g",
                now,
                self._failures,
                self._retry_at,
            )


class GuardedControlLoop:
    """Runs tick → actuate → notify under a breaker, coasting when it opens.

    The loop owns the *wiring* of one control cycle and nothing else: the
    controller still decides, the actuator still applies.  Any
    :class:`~repro.exceptions.ReproError` out of that cycle counts as one
    breaker failure; while the breaker is open the loop skips the cycle
    entirely and the deployed plan — tracked as ``last_good`` — stays in
    force.  Callers that *require* a live control plane (e.g. an experiment
    asserting convergence) call :meth:`require_healthy`.
    """

    def __init__(self, controller, actuator, breaker=None, tracer=None) -> None:
        self._controller = controller
        self._actuator = actuator
        self._breaker = breaker or CircuitBreaker()
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._last_good: AllocationDelta | None = None
        self._last_error: ReproError | None = None
        self.ticks_run = 0
        self.ticks_coasted = 0
        self.failures = 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def breaker(self) -> CircuitBreaker:
        """The breaker (exposed for diagnostics)."""
        return self._breaker

    @property
    def degraded(self) -> bool:
        """True while the breaker keeps the control plane offline."""
        return self._breaker.state != _CLOSED

    @property
    def last_good(self) -> AllocationDelta | None:
        """The most recent delta that fully actuated."""
        return self._last_good

    @property
    def last_error(self) -> ReproError | None:
        """The failure that most recently tripped the breaker's counter."""
        return self._last_error

    def require_healthy(self) -> None:
        """Raise :class:`DegradedModeError` unless the breaker is closed."""
        if self.degraded:
            cause = f": last failure was {self._last_error}" if self._last_error else ""
            raise DegradedModeError(
                f"control plane is {self._breaker.state} "
                f"(retry at t={self._breaker.retry_at}){cause}"
            )

    # ------------------------------------------------------------------
    # One guarded cycle.
    # ------------------------------------------------------------------
    def run_tick(self, now: float, context=None) -> AllocationDelta | None:
        """One cycle: breaker gate, tick, actuate, feedback.

        Returns the delta that actuated, or ``None`` when the loop coasted
        (breaker open) or the controller held the plan steady.  Never raises
        on a tick failure — the breaker absorbs it.

        ``context`` is the request-scoped trace context of the request whose
        arrival triggered this tick (the live service path); the loop enters
        a ``tick`` span on it and hands it to the actuator so any
        ``plan_actuation`` event links into the request's causal chain.
        """
        if not self._breaker.allow(now):
            self.ticks_coasted += 1
            if self._tracer is not None:
                self._tracer.emit("replan_decision", now, outcome="coasting", tick=-1)
            return None
        self.ticks_run += 1
        if context is not None:
            context.enter("tick")
        try:
            delta = self._controller.tick(now)
            if delta is not None:
                if context is not None:
                    report = self._actuator.apply(delta, context=context)
                else:
                    report = self._actuator.apply(delta)
                self._controller.notify_actuation(report, delta)
                if report.fully_applied:
                    self._last_good = delta
        except ReproError as exc:
            self.failures += 1
            self._last_error = exc
            self._breaker.record_failure(now)
            _log.warning("guarded tick failed at t=%g: %s", now, exc)
            return None
        self._breaker.record_success()
        return delta
